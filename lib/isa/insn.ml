(** Machine instructions.

    Instructions exist in two forms that share this one type:

    - {e physical form} — produced by the code generator after register
      allocation: each operand's [r] field is a {e physical} register
      number (possibly in the extended section).  No [Connect]
      instructions are present.
    - {e architectural form} — produced by the connect-insertion pass
      (or trivially, when no RC is in use, identical to physical form):
      each operand's [r] field is an {e architectural index} below the
      core size, and [Connect] instructions steer the mapping table so
      every access reaches the physical register the allocator chose.

    The simulator executes architectural form; the register allocator and
    its tests reason about physical form. *)

type operand = { cls : Reg.cls; r : int }

let ireg r = { cls = Reg.Int; r }
let freg r = { cls = Reg.Float; r }

(** Provenance of an instruction, for the code-size accounting of
    Figure 9. *)
type tag =
  | Normal
  | Spill  (** spill loads/stores and their address arithmetic *)
  | Save  (** callee-saved core register save/restore *)
  | Xsave  (** extended-register save/restore around calls (sec. 4.1) *)

type map_kind = Opcode.map_kind = Read | Write

(** One mapping-table update carried by a [Connect] instruction.  The
    multiple-connect instructions (connect-use-use, connect-def-use,
    connect-def-def; paper section 2.2) carry two. *)
type connect = { cmap : map_kind; ri : int; rp : int; ccls : Reg.cls }

type t = {
  op : Opcode.t;
  dst : operand option;
  srcs : operand array;
  imm : int64;
  fimm : float;
  mutable target : int;
      (** label id before assembly; absolute instruction address after *)
  hint : bool;  (** static branch prediction: [true] = predicted taken *)
  tag : tag;
  connects : connect array;  (** non-empty iff [op = Connect] *)
}

let no_target = -1

let make ?dst ?(srcs = [||]) ?(imm = 0L) ?(fimm = 0.0) ?(target = no_target)
    ?(hint = false) ?(tag = Normal) ?(connects = [||]) op =
  { op; dst; srcs; imm; fimm; target; hint; tag; connects }

(* Convenience constructors used by the code generator and tests. *)

let alu ?tag a ~dst ~s1 ~s2 =
  make ?tag (Opcode.Alu a) ~dst:(ireg dst) ~srcs:[| ireg s1; ireg s2 |]

let alui ?tag a ~dst ~s1 ~imm =
  make ?tag (Opcode.Alui a) ~dst:(ireg dst) ~srcs:[| ireg s1 |] ~imm

let li ?tag ~dst imm = make ?tag Opcode.Li ~dst:(ireg dst) ~imm
let move ?tag ~dst ~src () =
  make ?tag Opcode.Move ~dst:(ireg dst) ~srcs:[| ireg src |]
let fli ?tag ~dst fimm = make ?tag Opcode.Fli ~dst:(freg dst) ~fimm
let fmove ?tag ~dst ~src () =
  make ?tag Opcode.Fmove ~dst:(freg dst) ~srcs:[| freg src |]

let fpu ?tag f ~dst ~s1 ~s2 =
  make ?tag (Opcode.Fpu f) ~dst:(freg dst) ~srcs:[| freg s1; freg s2 |]

let fpu1 ?tag f ~dst ~s1 = make ?tag (Opcode.Fpu f) ~dst:(freg dst) ~srcs:[| freg s1 |]
let itof ?tag ~dst ~src () = make ?tag Opcode.Itof ~dst:(freg dst) ~srcs:[| ireg src |]
let ftoi ?tag ~dst ~src () = make ?tag Opcode.Ftoi ~dst:(ireg dst) ~srcs:[| freg src |]

let fcmp ?tag c ~dst ~s1 ~s2 =
  make ?tag (Opcode.Fcmp c) ~dst:(ireg dst) ~srcs:[| freg s1; freg s2 |]

let ld ?tag ?(width = Opcode.W8) ~dst ~base ~off () =
  make ?tag (Opcode.Ld width) ~dst:(ireg dst) ~srcs:[| ireg base |]
    ~imm:(Int64.of_int off)

let st ?tag ?(width = Opcode.W8) ~src ~base ~off () =
  make ?tag (Opcode.St width) ~srcs:[| ireg src; ireg base |]
    ~imm:(Int64.of_int off)

let fld ?tag ~dst ~base ~off () =
  make ?tag Opcode.Fld ~dst:(freg dst) ~srcs:[| ireg base |] ~imm:(Int64.of_int off)

let fst_ ?tag ~src ~base ~off () =
  make ?tag Opcode.Fst ~srcs:[| freg src; ireg base |] ~imm:(Int64.of_int off)

let br ?tag c ~s1 ~s2 ~target ~hint =
  make ?tag (Opcode.Br c) ~srcs:[| ireg s1; ireg s2 |] ~target ~hint

let jmp ?tag target = make ?tag Opcode.Jmp ~target ~hint:true

let jsr ?tag target =
  make ?tag Opcode.Jsr ~dst:(ireg Reg.ra) ~target ~hint:true

let rts ?tag () = make ?tag Opcode.Rts ~srcs:[| ireg Reg.ra |] ~hint:true
let emit ~src = make Opcode.Emit ~srcs:[| ireg src |]
let femit ~src = make Opcode.Femit ~srcs:[| freg src |]
let halt () = make Opcode.Halt
let nop () = make Opcode.Nop
let trap () = make Opcode.Trap ~hint:true
let rfe () = make Opcode.Rfe ~hint:true
let mapen enabled = make Opcode.Mapen ~imm:(if enabled then 1L else 0L)

(** Privileged: read integer mapping-table entry [idx] into [dst]. *)
let mfmap kind ~dst ~idx =
  make (Opcode.Mfmap kind) ~dst:(ireg dst) ~imm:(Int64.of_int idx)

(** Privileged: write [src] into integer mapping-table entry [idx]. *)
let mtmap kind ~src ~idx =
  make (Opcode.Mtmap kind) ~srcs:[| ireg src |] ~imm:(Int64.of_int idx)

let connect1 ?tag cmap ~cls ~ri ~rp =
  make ?tag Opcode.Connect ~connects:[| { cmap; ri; rp; ccls = cls } |]

let connect_use ?tag ~cls ~ri ~rp () = connect1 ?tag Read ~cls ~ri ~rp
let connect_def ?tag ~cls ~ri ~rp () = connect1 ?tag Write ~cls ~ri ~rp

(** A multiple-connect instruction carrying two updates. *)
let connect2 ?tag c1 c2 = make ?tag Opcode.Connect ~connects:[| c1; c2 |]

let is_connect i = Opcode.is_connect i.op
let is_branch i = Opcode.is_branch i.op
let is_mem i = Opcode.is_mem i.op
let is_load i = Opcode.is_load i.op
let is_store i = Opcode.is_store i.op
let is_call i = Opcode.is_call i.op

(** All register reads of an instruction (class, number). *)
let reads i = i.srcs

let writes i = match i.dst with None -> [||] | Some d -> [| d |]

let pp_operand ppf o = Reg.pp_arch o.cls ppf o.r

let pp_connect ppf c =
  let kind = match c.cmap with Read -> "use" | Write -> "def" in
  Fmt.pf ppf "%s %a,%a" kind (Reg.pp_arch c.ccls) c.ri (Reg.pp_phys c.ccls) c.rp

let pp ppf i =
  match i.op with
  | Opcode.Connect ->
      Fmt.pf ppf "connect_%a"
        Fmt.(array ~sep:(any "_") pp_connect)
        i.connects
  | _ ->
      let parts = ref [] in
      Array.iter (fun s -> parts := Fmt.str "%a" pp_operand s :: !parts) i.srcs;
      (match i.op with
      | Opcode.Li | Opcode.Alui _ | Opcode.Ld _ | Opcode.St _ | Opcode.Fld
      | Opcode.Fst | Opcode.Mapen ->
          parts := Int64.to_string i.imm :: !parts
      | Opcode.Fli -> parts := Fmt.str "%g" i.fimm :: !parts
      | _ -> ());
      if i.target <> no_target then parts := Fmt.str "@%d" i.target :: !parts;
      let srcs = List.rev !parts in
      let dst =
        match i.dst with None -> [] | Some d -> [ Fmt.str "%a" pp_operand d ]
      in
      Fmt.pf ppf "%a %s" Opcode.pp i.op (String.concat ", " (dst @ srcs))

let tag_to_string = function
  | Normal -> "normal"
  | Spill -> "spill"
  | Save -> "save"
  | Xsave -> "xsave"
