(** Deterministic instruction latencies — Table 1 of the paper.

    {v
    INT ALU       1        FP ALU         3
    INT multiply  3        FP conversion  3
    INT divide    10       FP multiply    3
    branch        1/1-slot FP divide      10
    memory load   2 or 4   memory store   1
    v}

    The load latency (2 or 4 cycles) and the connect latency (0 or 1
    cycle, paper section 2.4 / Figure 12) are configuration points. *)

type t = {
  load : int;  (** memory load latency, 2 or 4 in the paper *)
  connect : int;  (** connect instruction latency, 0 or 1 *)
}

let default = { load = 2; connect = 0 }

let v ?(load = 2) ?(connect = 0) () =
  if load < 1 then invalid_arg "Latency.v: load < 1";
  if connect < 0 || connect > 1 then invalid_arg "Latency.v: connect not 0/1";
  { load; connect }

let int_alu = 1
let int_multiply = 3
let int_divide = 10
let branch = 1
let store = 1
let fp_alu = 3
let fp_conversion = 3
let fp_multiply = 3
let fp_divide = 10

let of_opcode t (op : Opcode.t) =
  match op with
  | Alu (Mul | Div | Rem) | Alui (Mul | Div | Rem) -> (
      match op with
      | Alu Mul | Alui Mul -> int_multiply
      | _ -> int_divide)
  | Alu _ | Alui _ | Li | Move -> int_alu
  | Fli | Fmove -> int_alu
  | Fpu (Fmul | Fdiv) -> ( match op with Fpu Fmul -> fp_multiply | _ -> fp_divide)
  | Fpu (Fadd | Fsub | Fneg | Fabs) -> fp_alu
  | Itof | Ftoi -> fp_conversion
  | Fcmp _ -> fp_alu
  | Ld _ | Fld -> t.load
  | St _ | Fst -> store
  | Br _ | Jmp | Jsr | Rts | Trap | Rfe -> branch
  | Connect -> t.connect
  | Emit | Femit | Mapen | Mfmap _ | Mtmap _ -> int_alu
  | Halt | Nop -> int_alu

(** Rows of Table 1, for the [table1] bench target. *)
let table1 t =
  [
    ("INT ALU", int_alu);
    ("INT multiply", int_multiply);
    ("INT divide", int_divide);
    ("branch", branch);
    ("memory load", t.load);
    ("memory store", store);
    ("FP ALU", fp_alu);
    ("FP conversion", fp_conversion);
    ("FP multiply", fp_multiply);
    ("FP divide", fp_divide);
  ]
