(** Opcodes of the MIPS-flavoured target instruction set, extended with
    general compare-and-branch opcodes (paper section 5.2) and the
    register-connection instructions (paper section 2.2). *)

type alu =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Sll
  | Srl
  | Sra
  | Slt  (** set if less-than, signed *)
  | Seq  (** set if equal *)

type fpu = Fadd | Fsub | Fmul | Fdiv | Fneg | Fabs

(** Branch / comparison conditions over two integer operands. *)
type cond = Eq | Ne | Lt | Le | Gt | Ge

(** Memory access width: full 8-byte words or single bytes (for the
    string-processing workloads). *)
type width = W8 | W1

(** Which half of a mapping-table entry an instruction touches. *)
type map_kind = Read | Write

type t =
  | Alu of alu  (** int dst, two int sources *)
  | Alui of alu  (** int dst, int source and immediate *)
  | Li  (** int dst, immediate *)
  | Move  (** int dst, int source *)
  | Fli  (** float dst, float immediate *)
  | Fmove  (** float dst, float source *)
  | Fpu of fpu  (** float dst, float sources *)
  | Itof  (** float dst, int source *)
  | Ftoi  (** int dst, float source *)
  | Fcmp of cond  (** int dst (0/1), two float sources *)
  | Ld of width  (** int dst, int base, immediate offset *)
  | St of width  (** int value source, int base, immediate offset *)
  | Fld  (** float dst, int base, immediate offset *)
  | Fst  (** float value source, int base, immediate offset *)
  | Br of cond  (** two int sources, target, static hint *)
  | Jmp  (** unconditional jump to target *)
  | Jsr  (** call: writes RA, jumps to target, resets the register map *)
  | Rts  (** return: jumps to RA, resets the register map *)
  | Connect  (** updates the register mapping table (payload on the insn) *)
  | Emit  (** append int source to the observable output stream *)
  | Femit  (** append float source to the observable output stream *)
  | Trap  (** enter the trap handler, clearing the PSW map-enable flag *)
  | Rfe  (** return from exception, restoring the saved PSW *)
  | Mapen  (** privileged: set the PSW map-enable flag from the immediate *)
  | Mfmap of map_kind
      (** privileged: dst <- integer mapping-table entry [imm]; reads the
          table even when the PSW map-enable flag is clear, so trap
          handlers can save connection state (paper section 4.3) *)
  | Mtmap of map_kind
      (** privileged: integer mapping-table entry [imm] <- register
          source; the dynamic counterpart of a connect, used to restore
          saved connection state *)
  | Halt
  | Nop

let is_branch = function Br _ | Jmp | Jsr | Rts | Trap | Rfe -> true | _ -> false
let is_load = function Ld _ | Fld -> true | _ -> false
let is_store = function St _ | Fst -> true | _ -> false
let is_mem op = is_load op || is_store op
let is_connect = function Connect -> true | _ -> false
let is_call = function Jsr -> true | _ -> false

let eval_cond c (a : int64) (b : int64) =
  match c with
  | Eq -> Int64.equal a b
  | Ne -> not (Int64.equal a b)
  | Lt -> Int64.compare a b < 0
  | Le -> Int64.compare a b <= 0
  | Gt -> Int64.compare a b > 0
  | Ge -> Int64.compare a b >= 0

let eval_fcond c (a : float) (b : float) =
  match c with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

let negate_cond = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

(** Division semantics: division or remainder by zero yields zero rather
    than trapping, so every workload is total. *)
let eval_alu op (a : int64) (b : int64) =
  let open Int64 in
  match op with
  | Add -> add a b
  | Sub -> sub a b
  | Mul -> mul a b
  | Div -> if equal b 0L then 0L else div a b
  | Rem -> if equal b 0L then 0L else rem a b
  | And -> logand a b
  | Or -> logor a b
  | Xor -> logxor a b
  | Sll -> shift_left a (to_int (logand b 63L))
  | Srl -> shift_right_logical a (to_int (logand b 63L))
  | Sra -> shift_right a (to_int (logand b 63L))
  | Slt -> if compare a b < 0 then 1L else 0L
  | Seq -> if equal a b then 1L else 0L

let eval_fpu op (a : float) (b : float) =
  match op with
  | Fadd -> a +. b
  | Fsub -> a -. b
  | Fmul -> a *. b
  | Fdiv -> if b = 0.0 then 0.0 else a /. b
  | Fneg -> -.a
  | Fabs -> Float.abs a

let string_of_alu = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Sll -> "sll"
  | Srl -> "srl"
  | Sra -> "sra"
  | Slt -> "slt"
  | Seq -> "seq"

let string_of_fpu = function
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"
  | Fneg -> "fneg"
  | Fabs -> "fabs"

let string_of_cond = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let to_string = function
  | Alu a -> string_of_alu a
  | Alui a -> string_of_alu a ^ "i"
  | Li -> "li"
  | Move -> "move"
  | Fli -> "fli"
  | Fmove -> "fmove"
  | Fpu f -> string_of_fpu f
  | Itof -> "itof"
  | Ftoi -> "ftoi"
  | Fcmp c -> "fcmp." ^ string_of_cond c
  | Ld W8 -> "ld"
  | Ld W1 -> "lb"
  | St W8 -> "st"
  | St W1 -> "sb"
  | Fld -> "fld"
  | Fst -> "fst"
  | Br c -> "b" ^ string_of_cond c
  | Jmp -> "jmp"
  | Jsr -> "jsr"
  | Rts -> "rts"
  | Connect -> "connect"
  | Emit -> "emit"
  | Femit -> "femit"
  | Trap -> "trap"
  | Rfe -> "rfe"
  | Mapen -> "mapen"
  | Mfmap Read -> "mfmapr"
  | Mfmap Write -> "mfmapw"
  | Mtmap Read -> "mtmapr"
  | Mtmap Write -> "mtmapw"
  | Halt -> "halt"
  | Nop -> "nop"

let pp ppf op = Fmt.string ppf (to_string op)
