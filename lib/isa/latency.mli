(** Deterministic instruction latencies — Table 1 of the paper.

    {v
    INT ALU       1        FP ALU         3
    INT multiply  3        FP conversion  3
    INT divide    10       FP multiply    3
    branch        1/1-slot FP divide      10
    memory load   2 or 4   memory store   1
    v}

    The load latency (2 or 4 cycles) and the connect latency (0 or 1
    cycle, paper section 2.4 / Figure 12) are configuration points. *)

type t = {
  load : int;  (** memory load latency, 2 or 4 in the paper *)
  connect : int;  (** connect instruction latency, 0 or 1 *)
}

(** 2-cycle loads, zero-cycle connects. *)
val default : t

(** @raise Invalid_argument when [load < 1] or [connect] is not 0/1. *)
val v : ?load:int -> ?connect:int -> unit -> t

val int_alu : int
val int_multiply : int
val int_divide : int
val branch : int
val store : int
val fp_alu : int
val fp_conversion : int
val fp_multiply : int
val fp_divide : int

(** Execution latency of an opcode under this configuration. *)
val of_opcode : t -> Opcode.t -> int

(** Rows of Table 1, for the [table1] bench target. *)
val table1 : t -> (string * int) list
