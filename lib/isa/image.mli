(** The assembler: flattens a machine program into an executable image.

    Instruction addresses are indices into the flat code array; data
    lives in a separate byte-addressed space (globals from [data_base]
    upward, the stack growing down from [stack_top]). *)

type t = {
  code : Insn.t array;
  entry : int;  (** address of the entry function's first instruction *)
  label_addr : (int, int) Hashtbl.t;
  func_addr : (string * int) list;
  global_addr : (string * int) list;
  data_base : int;
  data_end : int;
  stack_top : int;
  mem_size : int;
  data_image : (int * Mcode.init) list;  (** address, initialiser *)
}

val data_base : int
val stack_reserve : int
val align8 : int -> int

exception Undefined_label of int
exception Undefined_function of string

(** Write one global's initialiser at [addr] into a memory image.
    Words are little-endian 64-bit; doubles are stored as their IEEE
    bit patterns. *)
val write_init : Bytes.t -> int -> Mcode.init -> unit

(** @raise Invalid_argument when the name is unknown. *)
val global_address : t -> string -> int

(** @raise Undefined_function when the name is unknown. *)
val function_address : t -> string -> int

(** Lay out globals from {!data_base}, 8-byte aligned, in declaration
    order.  Shared by the assembler and the IR interpreter so both see
    identical addresses.  Returns the address map and the end of the
    data segment. *)
val layout_globals : Mcode.global list -> (string * int) list * int

(** Flatten functions (entry function first, at address 0), patch branch
    targets and lay out data.
    @raise Undefined_label when a target label is not defined. *)
val assemble : Mcode.t -> t

(** Content hash of everything that determines an image's execution:
    code, entry point, initialised data, stack top and memory size.
    Two images with equal fingerprints produce identical dynamic
    instruction streams under identical machine semantics — the
    trace-replay engine's cache key. *)
val fingerprint : t -> string
