(** Predecoded instructions: the operand-resolved, allocation-free form
    of {!Insn.t} consumed by the simulator's per-cycle issue loop (see
    DESIGN.md, "Simulator predecode"). *)

type t = {
  op : Opcode.t;
  lat : int;  (** issue-to-ready latency, already clamped to [>= 1] *)
  is_mem : bool;
  is_connect : bool;
  nsrcs : int;  (** 0, 1 or 2 *)
  s0c : Reg.cls;
  s0 : int;
  s1c : Reg.cls;
  s1 : int;
  dc : Reg.cls;
  d : int;  (** architectural destination index, [-1] when absent *)
  imm : int64;
  fimm : float;
  target : int;
  hint : bool;
  connects : Insn.connect array;
}

val no_dst : int

(** Decode one instruction under a latency configuration.
    @raise Invalid_argument on more than two register sources. *)
val of_insn : lat:Latency.t -> Insn.t -> t

(** Decode a whole code image under one latency configuration. *)
val decode : lat:Latency.t -> Insn.t array -> t array
