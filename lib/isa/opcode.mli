(** Opcodes of the MIPS-flavoured target instruction set, extended with
    general compare-and-branch opcodes (paper section 5.2), the
    register-connection instructions (paper section 2.2) and the
    privileged map-access instructions used by trap handlers (paper
    section 4.3). *)

type alu =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Sll
  | Srl
  | Sra
  | Slt  (** set if less-than, signed *)
  | Seq  (** set if equal *)

type fpu = Fadd | Fsub | Fmul | Fdiv | Fneg | Fabs

(** Branch / comparison conditions over two integer operands. *)
type cond = Eq | Ne | Lt | Le | Gt | Ge

(** Memory access width: full 8-byte words or single bytes. *)
type width = W8 | W1

(** Which half of a mapping-table entry an instruction touches. *)
type map_kind = Read | Write

type t =
  | Alu of alu  (** int dst, two int sources *)
  | Alui of alu  (** int dst, int source and immediate *)
  | Li  (** int dst, immediate *)
  | Move  (** int dst, int source *)
  | Fli  (** float dst, float immediate *)
  | Fmove  (** float dst, float source *)
  | Fpu of fpu  (** float dst, float sources *)
  | Itof  (** float dst, int source *)
  | Ftoi  (** int dst, float source *)
  | Fcmp of cond  (** int dst (0/1), two float sources *)
  | Ld of width  (** int dst, int base, immediate offset *)
  | St of width  (** int value source, int base, immediate offset *)
  | Fld  (** float dst, int base, immediate offset *)
  | Fst  (** float value source, int base, immediate offset *)
  | Br of cond  (** two int sources, target, static hint *)
  | Jmp  (** unconditional jump to target *)
  | Jsr  (** call: writes RA, jumps, resets the register map *)
  | Rts  (** return: jumps to RA, resets the register map *)
  | Connect  (** updates the register mapping table (payload on the insn) *)
  | Emit  (** append int source to the observable output stream *)
  | Femit  (** append float source to the observable output stream *)
  | Trap  (** enter the trap handler, clearing the PSW map-enable flag *)
  | Rfe  (** return from exception, restoring the saved PSW *)
  | Mapen  (** privileged: set the PSW map-enable flag from the immediate *)
  | Mfmap of map_kind
      (** privileged: dst <- integer mapping-table entry [imm]; works
          with the map disabled, so handlers can save connection state *)
  | Mtmap of map_kind
      (** privileged: integer mapping-table entry [imm] <- register
          source; the dynamic counterpart of a connect *)
  | Halt
  | Nop

val is_branch : t -> bool
val is_load : t -> bool
val is_store : t -> bool
val is_mem : t -> bool
val is_connect : t -> bool
val is_call : t -> bool

val eval_cond : cond -> int64 -> int64 -> bool
val eval_fcond : cond -> float -> float -> bool
val negate_cond : cond -> cond

(** Division or remainder by zero yields zero, so every program is
    total. *)
val eval_alu : alu -> int64 -> int64 -> int64

val eval_fpu : fpu -> float -> float -> float
val string_of_alu : alu -> string
val string_of_fpu : fpu -> string
val string_of_cond : cond -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit
