(** The assembler: flattens a machine program into an executable image.

    Instruction addresses are indices into the flat code array; data lives
    in a separate byte-addressed space (globals from [data_base] upward,
    the stack growing down from [stack_top]). *)

type t = {
  code : Insn.t array;
  entry : int;  (** address of the entry function's first instruction *)
  label_addr : (int, int) Hashtbl.t;
  func_addr : (string * int) list;
  global_addr : (string * int) list;
  data_base : int;
  data_end : int;
  stack_top : int;
  mem_size : int;
  data_image : (int * Mcode.init) list;  (** address, initialiser *)
}

let data_base = 0x1000
let stack_reserve = 1 lsl 20
let align8 n = (n + 7) land lnot 7

exception Undefined_label of int
exception Undefined_function of string

(** Write one global's initialiser at [addr].  Words are little-endian
    64-bit; doubles are stored as their IEEE bit patterns. *)
let write_init mem addr (init : Mcode.init) =
  match init with
  | Mcode.Zero -> ()
  | Mcode.Words ws ->
      Array.iteri (fun k w -> Bytes.set_int64_le mem (addr + (8 * k)) w) ws
  | Mcode.Doubles ds ->
      Array.iteri
        (fun k d -> Bytes.set_int64_le mem (addr + (8 * k)) (Int64.bits_of_float d))
        ds
  | Mcode.Bytes s -> Bytes.blit_string s 0 mem addr (String.length s)

let global_address t name =
  try List.assoc name t.global_addr
  with Not_found -> invalid_arg ("Image.global_address: " ^ name)

(** Lay out globals from [data_base], 8-byte aligned, in declaration
    order.  Shared by the assembler and the IR interpreter so both see
    identical addresses.  Returns the address map and the end of the
    data segment. *)
let layout_globals (globals : Mcode.global list) =
  let next = ref data_base in
  let addr =
    List.map
      (fun (g : Mcode.global) ->
        let a = !next in
        next := align8 (!next + g.bytes);
        (g.gname, a))
      globals
  in
  (addr, !next)

let function_address t name =
  try List.assoc name t.func_addr with Not_found -> raise (Undefined_function name)

(** Lay out globals, flatten functions block by block, and patch branch
    targets.  [Jsr] targets must already be label ids of function entry
    blocks (the code generator emits calls via entry labels). *)
let assemble (prog : Mcode.t) =
  let global_addr, data_end = layout_globals prog.globals in
  let stack_top = align8 (data_end + stack_reserve) in
  let mem_size = stack_top + 4096 in
  let data_image =
    List.map
      (fun (g : Mcode.global) -> (List.assoc g.gname global_addr, g.init))
      prog.globals
  in
  (* Code layout: entry function first so execution can start at 0. *)
  let funcs =
    let entry_fn = Mcode.find_func prog prog.entry in
    entry_fn :: List.filter (fun (f : Mcode.func) -> f.name <> prog.entry) prog.funcs
  in
  let label_addr = Hashtbl.create 64 in
  let addr = ref 0 in
  List.iter
    (fun (f : Mcode.func) ->
      List.iter
        (fun (b : Mcode.block) ->
          Hashtbl.replace label_addr b.label !addr;
          addr := !addr + List.length b.insns)
        f.blocks)
    funcs;
  let code = Array.make !addr (Insn.nop ()) in
  let pos = ref 0 in
  List.iter
    (fun (f : Mcode.func) ->
      List.iter
        (fun (b : Mcode.block) ->
          List.iter
            (fun (i : Insn.t) ->
              let patched =
                if i.Insn.target = Insn.no_target then i
                else
                  match Hashtbl.find_opt label_addr i.Insn.target with
                  | Some a -> { i with Insn.target = a }
                  | None -> raise (Undefined_label i.Insn.target)
              in
              code.(!pos) <- patched;
              incr pos)
            b.insns)
        f.blocks)
    funcs;
  let func_addr =
    List.map
      (fun (f : Mcode.func) -> (f.name, Hashtbl.find label_addr f.entry_label))
      funcs
  in
  {
    code;
    entry = 0;
    label_addr;
    func_addr;
    global_addr;
    data_base;
    data_end;
    stack_top;
    mem_size;
    data_image;
  }

(** Content hash of everything that determines an image's execution —
    the trace-replay engine's cache key.  [Insn.t] carries no closures,
    so marshalling is total; the address tables are derived from [code]
    and need not be hashed. *)
let fingerprint (t : t) =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (t.code, t.entry, t.data_image, t.stack_top, t.mem_size)
          []))
