(** The assembler: flattens a machine program into an executable image.

    Instruction addresses are indices into the flat code array; data lives
    in a separate byte-addressed space (globals from [data_base] upward,
    the stack growing down from [stack_top]). *)

type t = {
  code : Insn.t array;
  entry : int;  (** address of the entry function's first instruction *)
  label_addr : (int, int) Hashtbl.t;
  func_addr : (string * int) list;
  global_addr : (string * int) list;
  data_base : int;
  data_end : int;
  stack_top : int;
  mem_size : int;
  data_image : (int * Mcode.init) list;  (** address, initialiser *)
}

let data_base = 0x1000
let stack_reserve = 1 lsl 20
let align8 n = (n + 7) land lnot 7

exception Undefined_label of int
exception Undefined_function of string

(** Write one global's initialiser at [addr].  Words are little-endian
    64-bit; doubles are stored as their IEEE bit patterns. *)
let write_init mem addr (init : Mcode.init) =
  match init with
  | Mcode.Zero -> ()
  | Mcode.Words ws ->
      Array.iteri (fun k w -> Bytes.set_int64_le mem (addr + (8 * k)) w) ws
  | Mcode.Doubles ds ->
      Array.iteri
        (fun k d -> Bytes.set_int64_le mem (addr + (8 * k)) (Int64.bits_of_float d))
        ds
  | Mcode.Bytes s -> Bytes.blit_string s 0 mem addr (String.length s)

let global_address t name =
  try List.assoc name t.global_addr
  with Not_found -> invalid_arg ("Image.global_address: " ^ name)

(** Lay out globals from [data_base], 8-byte aligned, in declaration
    order.  Shared by the assembler and the IR interpreter so both see
    identical addresses.  Returns the address map and the end of the
    data segment. *)
let layout_globals (globals : Mcode.global list) =
  let next = ref data_base in
  let addr =
    List.map
      (fun (g : Mcode.global) ->
        let a = !next in
        next := align8 (!next + g.bytes);
        (g.gname, a))
      globals
  in
  (addr, !next)

let function_address t name =
  try List.assoc name t.func_addr with Not_found -> raise (Undefined_function name)

(** Lay out globals, flatten functions block by block, and patch branch
    targets.  [Jsr] targets must already be label ids of function entry
    blocks (the code generator emits calls via entry labels). *)
let assemble (prog : Mcode.t) =
  let global_addr, data_end = layout_globals prog.globals in
  let stack_top = align8 (data_end + stack_reserve) in
  let mem_size = stack_top + 4096 in
  let data_image =
    List.map
      (fun (g : Mcode.global) -> (List.assoc g.gname global_addr, g.init))
      prog.globals
  in
  (* Code layout: entry function first so execution can start at 0. *)
  let funcs =
    let entry_fn = Mcode.find_func prog prog.entry in
    entry_fn :: List.filter (fun (f : Mcode.func) -> f.name <> prog.entry) prog.funcs
  in
  let label_addr = Hashtbl.create 64 in
  let addr = ref 0 in
  List.iter
    (fun (f : Mcode.func) ->
      List.iter
        (fun (b : Mcode.block) ->
          Hashtbl.replace label_addr b.label !addr;
          addr := !addr + List.length b.insns)
        f.blocks)
    funcs;
  let code = Array.make !addr (Insn.nop ()) in
  let pos = ref 0 in
  List.iter
    (fun (f : Mcode.func) ->
      List.iter
        (fun (b : Mcode.block) ->
          List.iter
            (fun (i : Insn.t) ->
              let patched =
                if i.Insn.target = Insn.no_target then i
                else
                  match Hashtbl.find_opt label_addr i.Insn.target with
                  | Some a -> { i with Insn.target = a }
                  | None -> raise (Undefined_label i.Insn.target)
              in
              code.(!pos) <- patched;
              incr pos)
            b.insns)
        f.blocks)
    funcs;
  let func_addr =
    List.map
      (fun (f : Mcode.func) -> (f.name, Hashtbl.find label_addr f.entry_label))
      funcs
  in
  {
    code;
    entry = 0;
    label_addr;
    func_addr;
    global_addr;
    data_base;
    data_end;
    stack_top;
    mem_size;
    data_image;
  }

(* --- fingerprint ---------------------------------------------------------

   Content hash of everything that determines an image's execution —
   the trace-replay engine's cache key.  The address tables are derived
   from [code] and need not be hashed.

   The replay engine asks for the fingerprint of every cell it
   considers — more than a thousand calls per sweep, each on a freshly
   scheduled image — so the hash must cost microseconds, not the
   ~100 µs a marshalled MD5 digest does.  Two independent polynomial
   hashes over the image's scalar content (odd multipliers mod 2^63,
   FNV-style xor-multiply step) give ~126 bits of accidental-collision
   resistance for a single linear walk; the replay equivalence suite
   (t_replay, @replay-smoke) bit-checks results, so a collision could
   not corrupt tables silently. *)

type fp_state = { mutable h1 : int; mutable h2 : int }

let[@inline] mix s x =
  s.h1 <- (s.h1 lxor x) * 0x100000001b3;
  s.h2 <- (s.h2 lxor x) * 0x10000000233

let mix64 s v =
  mix s (Int64.to_int v);
  mix s (Int64.to_int (Int64.shift_right_logical v 32))

let mix_string s str =
  mix s (String.length str);
  String.iter (fun c -> mix s (Char.code c)) str

let mix_operand s ({ cls; r } : Insn.operand) =
  mix s (match cls with Reg.Int -> 17 | Reg.Float -> 23);
  mix s r

let mix_insn s (i : Insn.t) =
  (* [Opcode.t] is a shallow variant: the generic hash is total and
     cheap on it, and total order of the remaining scalar fields pins
     the rest of the instruction. *)
  mix s (Hashtbl.hash i.Insn.op);
  (match i.Insn.dst with
  | None -> mix s 0
  | Some o ->
      mix s 1;
      mix_operand s o);
  mix s (Array.length i.Insn.srcs);
  Array.iter (mix_operand s) i.Insn.srcs;
  mix64 s i.Insn.imm;
  mix64 s (Int64.bits_of_float i.Insn.fimm);
  mix s i.Insn.target;
  mix s (Bool.to_int i.Insn.hint);
  mix s (Hashtbl.hash i.Insn.tag);
  mix s (Array.length i.Insn.connects);
  Array.iter
    (fun ({ cmap; ri; rp; ccls } : Insn.connect) ->
      mix s (match cmap with Insn.Read -> 29 | Insn.Write -> 31);
      mix s ri;
      mix s rp;
      mix s (match ccls with Reg.Int -> 17 | Reg.Float -> 23))
    i.Insn.connects

let mix_init s (init : Mcode.init) =
  match init with
  | Mcode.Zero -> mix s 5
  | Mcode.Words a ->
      mix s 7;
      mix s (Array.length a);
      Array.iter (mix64 s) a
  | Mcode.Doubles a ->
      mix s 11;
      mix s (Array.length a);
      Array.iter (fun f -> mix64 s (Int64.bits_of_float f)) a
  | Mcode.Bytes b ->
      mix s 13;
      mix_string s b

let fp_compute (t : t) =
  let s = { h1 = 0x15ee7; h2 = 0x2a9d3 } in
  mix s t.entry;
  mix s t.stack_top;
  mix s t.mem_size;
  mix s (Array.length t.code);
  Array.iter (mix_insn s) t.code;
  List.iter
    (fun (addr, init) ->
      mix s addr;
      mix_init s init)
    t.data_image;
  Printf.sprintf "%015x%015x" (s.h1 land max_int) (s.h2 land max_int)

(* Memoise per physical image (an ephemeron table keyed by identity —
   cheap stable hash, [==] match — that drops entries with the images
   themselves): repeated queries on one image, the common case in the
   simulation service, cost a table probe. *)
module Fp_cache = Ephemeron.K1.Make (struct
  type nonrec t = t

  let equal = ( == )
  let hash (t : t) = Hashtbl.hash (t.entry, Array.length t.code, t.data_end)
end)

let fp_cache = Fp_cache.create 64
let fp_mu = Mutex.create ()

let fingerprint (t : t) =
  match Mutex.protect fp_mu (fun () -> Fp_cache.find_opt fp_cache t) with
  | Some fp -> fp
  | None ->
      (* hash outside the lock: workers racing on one image at worst
         both compute the same string *)
      let fp = fp_compute t in
      Mutex.protect fp_mu (fun () -> Fp_cache.replace fp_cache t fp);
      fp
