(** Register identities, classes and file configurations.

    The instruction set can name [m] registers per class (the {e core}
    section); the machine may hold [n >= m] physical registers.
    Physical registers [0 .. m-1] form the core section; [m .. n-1] the
    extended section.  The {e home location} of architectural index [i]
    is physical register [i]. *)

type cls = Int | Float

val pp_cls : Format.formatter -> cls -> unit
val equal_cls : cls -> cls -> bool

(** Configuration of one register file (one class). *)
type file = {
  core : int;  (** number of architecturally nameable registers, [m] *)
  total : int;  (** number of physical registers, [n >= m] *)
}

(** @raise Invalid_argument when [core < 4] or [total < core]. *)
val file : core:int -> total:int -> file

(** A file with no extended section. *)
val core_only : int -> file

val extended_count : file -> int
val is_core : file -> int -> bool
val is_extended : file -> int -> bool

(** Home location of architectural index [i]: physical register [i]. *)
val home : int -> int

(** {2 Integer register roles}

    Paper section 5.1: four integer registers are reserved as spill
    registers and one as the stack pointer. *)

val zero : int
val sp : int
val spill_base : int
val spill_count : int
val ra : int
val rv : int
val first_alloc_int : int

(** {2 Floating-point register roles}

    Two reserved spill temporaries (documented deviation, DESIGN.md
    section 10) and a return-value register. *)

val fspill_base : int
val fspill_count : int
val frv : int
val first_alloc_float : int

val first_alloc : cls -> int
val spill_temps : cls -> int array

(** Architectural indices the connect-insertion pass must never pick as
    victims: zero, SP and RA keep their home connection at all times. *)
val pinned_indices : cls -> int list

(** The physical registers of a file legal for allocation. *)
val allocatable : cls -> file -> int list

(** Callee-saved core registers: the upper half of the allocatable core
    section.  Extended registers are effectively caller-saved (paper
    section 4.1). *)
val callee_saved : cls -> file -> int list

val is_callee_saved : cls -> file -> int -> bool
val pp_phys : cls -> Format.formatter -> int -> unit
val pp_arch : cls -> Format.formatter -> int -> unit
