(** Register identities, classes and file configurations.

    The instruction set can name [m] registers per class (the {e core}
    section); the machine may hold [n >= m] physical registers.  Physical
    registers [0 .. m-1] form the core section; [m .. n-1] form the
    extended section.  The {e home location} of architectural index [i] is
    physical register [i]. *)

type cls = Int | Float

let pp_cls ppf = function
  | Int -> Fmt.string ppf "int"
  | Float -> Fmt.string ppf "float"

let equal_cls a b =
  match a, b with
  | Int, Int | Float, Float -> true
  | Int, Float | Float, Int -> false

(** Configuration of one register file (one class). *)
type file = {
  core : int;  (** number of architecturally nameable registers, [m] *)
  total : int;  (** number of physical registers, [n >= m] *)
}

let file ~core ~total =
  if core < 4 then invalid_arg "Reg.file: core < 4";
  if total < core then invalid_arg "Reg.file: total < core";
  { core; total }

(** A file with no extended section. *)
let core_only m = file ~core:m ~total:m

let extended_count f = f.total - f.core
let is_core f p = p >= 0 && p < f.core
let is_extended f p = p >= f.core && p < f.total

(** Home location of architectural index [i]: physical register [i]. *)
let home i = i

(* Integer register roles (paper section 5.1: four integer registers are
   reserved as spill registers and one as the stack pointer). *)

let zero = 0
let sp = 1
let spill_base = 2
let spill_count = 4
let ra = 6
let rv = 7
let first_alloc_int = 8

(* Floating-point register roles.  The paper reserves spill temporaries
   only in the integer file; spill-everywhere reloads need FP temporaries
   too, so we reserve two (documented deviation, DESIGN.md section 10). *)

let fspill_base = 0
let fspill_count = 2
let frv = 2
let first_alloc_float = 3

let first_alloc = function
  | Int -> first_alloc_int
  | Float -> first_alloc_float

let spill_temps = function
  | Int -> Array.init spill_count (fun k -> spill_base + k)
  | Float -> Array.init fspill_count (fun k -> fspill_base + k)

(** Architectural indices that the connect-insertion pass must never pick
    as victims: the zero register, the stack pointer and the return
    address register keep their home connection at all times. *)
let pinned_indices = function
  | Int -> [ zero; sp; ra ]
  | Float -> []

(** Allocatable physical registers of a file, hottest-first ordering is
    decided by the allocator; this is just the legal set. *)
let allocatable cls f =
  let lo = first_alloc cls in
  let rec collect p acc = if p < lo then acc else collect (p - 1) (p :: acc) in
  collect (f.total - 1) []

(** Callee-saved core registers: the upper half of the allocatable core
    section.  Extended registers are effectively caller-saved (they must
    be reconnected to be spilled, paper section 4.1). *)
let callee_saved cls f =
  let lo = first_alloc cls in
  let n_alloc_core = max 0 (f.core - lo) in
  let first_callee = lo + (n_alloc_core / 2) in
  let rec collect p acc =
    if p < first_callee then acc else collect (p - 1) (p :: acc)
  in
  collect (f.core - 1) []

let is_callee_saved cls f p = List.mem p (callee_saved cls f)

let pp_phys cls ppf p =
  match cls with
  | Int -> Fmt.pf ppf "Rp%d" p
  | Float -> Fmt.pf ppf "Fp%d" p

let pp_arch cls ppf i =
  match cls with
  | Int -> Fmt.pf ppf "r%d" i
  | Float -> Fmt.pf ppf "f%d" i
