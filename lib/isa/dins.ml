(** Predecoded instructions: the operand-resolved, allocation-free form
    of {!Insn.t} consumed by the simulator's per-cycle issue loop.

    An architectural-form program is decoded once per simulation
    ({!decode}); the hot loop then reads flat scalar fields — opcode,
    clamped latency, unpacked operand class/index pairs — instead of
    re-matching [Insn.t] variants and allocating a physical-operand
    array and destination option per issue attempt.  Instructions carry
    at most two register sources, so sources are unpacked into two
    slots; [d = -1] encodes "no destination". *)

type t = {
  op : Opcode.t;
  lat : int;  (** issue-to-ready latency under the decode's {!Latency.t},
                  already clamped to [>= 1] *)
  is_mem : bool;
  is_connect : bool;
  nsrcs : int;  (** 0, 1 or 2 *)
  s0c : Reg.cls;
  s0 : int;  (** architectural index of source 0 (when [nsrcs > 0]) *)
  s1c : Reg.cls;
  s1 : int;
  dc : Reg.cls;
  d : int;  (** architectural destination index, [-1] when absent *)
  imm : int64;
  fimm : float;
  target : int;
  hint : bool;
  connects : Insn.connect array;  (** non-empty iff [op = Connect] *)
}

let no_dst = -1

let of_insn ~(lat : Latency.t) (i : Insn.t) =
  let srcs = i.Insn.srcs in
  let nsrcs = Array.length srcs in
  if nsrcs > 2 then invalid_arg "Dins.of_insn: more than two sources";
  let s0c, s0 =
    if nsrcs > 0 then (srcs.(0).Insn.cls, srcs.(0).Insn.r) else (Reg.Int, 0)
  in
  let s1c, s1 =
    if nsrcs > 1 then (srcs.(1).Insn.cls, srcs.(1).Insn.r) else (Reg.Int, 0)
  in
  let dc, d =
    match i.Insn.dst with
    | Some o -> (o.Insn.cls, o.Insn.r)
    | None -> (Reg.Int, no_dst)
  in
  {
    op = i.Insn.op;
    lat = max 1 (Latency.of_opcode lat i.Insn.op);
    is_mem = Insn.is_mem i;
    is_connect = Insn.is_connect i;
    nsrcs;
    s0c;
    s0;
    s1c;
    s1;
    dc;
    d;
    imm = i.Insn.imm;
    fimm = i.Insn.fimm;
    target = i.Insn.target;
    hint = i.Insn.hint;
    connects = i.Insn.connects;
  }

(** Decode a whole code image under one latency configuration. *)
let decode ~lat (code : Insn.t array) = Array.map (of_insn ~lat) code
