(** Machine instructions.

    Instructions exist in two forms that share this one type:

    - {e physical form} — produced by the code generator after register
      allocation: each operand's [r] field is a {e physical} register
      number (possibly in the extended section); no [Connect]
      instructions are present;
    - {e architectural form} — produced by the connect-insertion pass
      (or trivially identical when no RC is in use): each operand's [r]
      field is an {e architectural index} below the core size, and
      [Connect] instructions steer the mapping table so every access
      reaches the physical register the allocator chose.

    The simulator executes architectural form; the register allocator
    and its tests reason about physical form. *)

type operand = { cls : Reg.cls; r : int }

val ireg : int -> operand
val freg : int -> operand

(** Provenance of an instruction, for the code-size accounting of
    Figure 9. *)
type tag =
  | Normal
  | Spill  (** spill loads/stores *)
  | Save  (** callee-saved core register save/restore *)
  | Xsave  (** extended-register save/restore around calls (sec. 4.1) *)

type map_kind = Opcode.map_kind = Read | Write

(** One mapping-table update carried by a [Connect] instruction.  The
    multiple-connect instructions (connect-use-use, connect-def-use,
    connect-def-def; paper section 2.2) carry two. *)
type connect = { cmap : map_kind; ri : int; rp : int; ccls : Reg.cls }

type t = {
  op : Opcode.t;
  dst : operand option;
  srcs : operand array;
  imm : int64;
  fimm : float;
  mutable target : int;
      (** label id before assembly; absolute instruction address after *)
  hint : bool;  (** static branch prediction: [true] = predicted taken *)
  tag : tag;
  connects : connect array;  (** non-empty iff [op = Connect] *)
}

val no_target : int

val make :
  ?dst:operand ->
  ?srcs:operand array ->
  ?imm:int64 ->
  ?fimm:float ->
  ?target:int ->
  ?hint:bool ->
  ?tag:tag ->
  ?connects:connect array ->
  Opcode.t ->
  t

(** {2 Convenience constructors} *)

val alu : ?tag:tag -> Opcode.alu -> dst:int -> s1:int -> s2:int -> t
val alui : ?tag:tag -> Opcode.alu -> dst:int -> s1:int -> imm:int64 -> t
val li : ?tag:tag -> dst:int -> int64 -> t
val move : ?tag:tag -> dst:int -> src:int -> unit -> t
val fli : ?tag:tag -> dst:int -> float -> t
val fmove : ?tag:tag -> dst:int -> src:int -> unit -> t
val fpu : ?tag:tag -> Opcode.fpu -> dst:int -> s1:int -> s2:int -> t
val fpu1 : ?tag:tag -> Opcode.fpu -> dst:int -> s1:int -> t
val itof : ?tag:tag -> dst:int -> src:int -> unit -> t
val ftoi : ?tag:tag -> dst:int -> src:int -> unit -> t
val fcmp : ?tag:tag -> Opcode.cond -> dst:int -> s1:int -> s2:int -> t
val ld : ?tag:tag -> ?width:Opcode.width -> dst:int -> base:int -> off:int -> unit -> t
val st : ?tag:tag -> ?width:Opcode.width -> src:int -> base:int -> off:int -> unit -> t
val fld : ?tag:tag -> dst:int -> base:int -> off:int -> unit -> t
val fst_ : ?tag:tag -> src:int -> base:int -> off:int -> unit -> t
val br : ?tag:tag -> Opcode.cond -> s1:int -> s2:int -> target:int -> hint:bool -> t
val jmp : ?tag:tag -> int -> t

(** Writes RA implicitly (visible as the [dst] operand). *)
val jsr : ?tag:tag -> int -> t

(** Reads RA implicitly (visible as the source operand). *)
val rts : ?tag:tag -> unit -> t

val emit : src:int -> t
val femit : src:int -> t
val halt : unit -> t
val nop : unit -> t
val trap : unit -> t
val rfe : unit -> t
val mapen : bool -> t

(** Privileged: read integer mapping-table entry [idx] into [dst]. *)
val mfmap : map_kind -> dst:int -> idx:int -> t

(** Privileged: write register [src] into integer mapping-table entry
    [idx]. *)
val mtmap : map_kind -> src:int -> idx:int -> t

val connect1 : ?tag:tag -> map_kind -> cls:Reg.cls -> ri:int -> rp:int -> t
val connect_use : ?tag:tag -> cls:Reg.cls -> ri:int -> rp:int -> unit -> t
val connect_def : ?tag:tag -> cls:Reg.cls -> ri:int -> rp:int -> unit -> t

(** A multiple-connect instruction carrying two updates. *)
val connect2 : ?tag:tag -> connect -> connect -> t

val is_connect : t -> bool
val is_branch : t -> bool
val is_mem : t -> bool
val is_load : t -> bool
val is_store : t -> bool
val is_call : t -> bool
val reads : t -> operand array
val writes : t -> operand array
val pp_operand : Format.formatter -> operand -> unit
val pp_connect : Format.formatter -> connect -> unit
val pp : Format.formatter -> t -> unit
val tag_to_string : tag -> string
