(** [eqntott]: truth-table generation — evaluates a wide boolean
    expression over the bits of every input vector with branch-free
    logic (many simultaneously live temporaries, fully unrollable),
    builds a bucket histogram and finishes with a counting sort. *)

open Rc_isa
open Rc_ir
module B = Builder

let buckets = 64

let build scale =
  let n = 4096 * scale in
  let prog = B.program ~entry:"main" in
  Builder.global prog "hist" ~bytes:(8 * buckets) ();
  Builder.global prog "sorted" ~bytes:(8 * buckets) ();
  let _eval =
    B.define prog "truth_scan" ~params:[ Reg.Int ] ~ret:Reg.Int (fun b params ->
        let len = match params with [ x ] -> x | _ -> assert false in
        let hist = B.addr b "hist" in
        let minterms = B.cint b 0 in
        let weighted = B.cint b 0 in
        B.for_ b ~start:(Op.C 0L) ~stop:(Op.V len) (fun i ->
            (* extract 12 input bits *)
            let bit k = B.andi b (B.srli b i (Int64.of_int k)) 1L in
            let a0 = bit 0 and a1 = bit 1 and a2 = bit 2 and a3 = bit 3 in
            let a4 = bit 4 and a5 = bit 5 and a6 = bit 6 and a7 = bit 7 in
            let a8 = bit 8 and a9 = bit 9 and a10 = bit 10 and a11 = bit 11 in
            (* two-level logic: sum of products *)
            let p1 = B.and_ b (B.and_ b a0 a1) (B.xori b a2 1L) in
            let p2 = B.and_ b (B.and_ b a3 a4) a5 in
            let p3 = B.and_ b (B.xor_ b a6 a7) a8 in
            let p4 = B.and_ b (B.and_ b a9 (B.xori b a10 1L)) a11 in
            let p5 = B.and_ b (B.xor_ b a0 a5) (B.xor_ b a4 a9) in
            let p6 = B.and_ b (B.and_ b a2 a7) (B.xori b a11 1L) in
            let s1 = B.or_ b p1 p2 in
            let s2 = B.or_ b p3 p4 in
            let s3 = B.or_ b p5 p6 in
            let out = B.or_ b (B.or_ b s1 s2) s3 in
            B.assign b minterms (B.add b minterms out);
            B.assign b weighted (B.add b weighted (B.mul b out i));
            (* histogram the product-term signature *)
            let sig_ =
              B.add b p1
                (B.add b (B.slli b p2 1L)
                   (B.add b (B.slli b p3 2L)
                      (B.add b (B.slli b p4 3L)
                         (B.add b (B.slli b p5 4L) (B.slli b p6 5L)))))
            in
            let cell = B.elem8 b hist sig_ in
            B.store b ~src:(B.addi b (B.load b cell) 1L) cell);
        B.emit b weighted;
        B.ret b (Some minterms))
  in
  let _main =
    B.define prog "main" ~params:[] (fun b _ ->
        let len = B.cint b n in
        let minterms = B.call_i b "truth_scan" [ len ] in
        B.emit b minterms;
        (* counting-sort style prefix over the histogram *)
        let hist = B.addr b "hist" in
        let sorted = B.addr b "sorted" in
        let acc = B.cint b 0 in
        B.for_n b ~start:0 ~stop:buckets (fun i ->
            let c = B.load b (B.elem8 b hist i) in
            B.assign b acc (B.add b acc c);
            B.store b ~src:acc (B.elem8 b sorted i));
        let chk = B.cint b 0 in
        B.for_n b ~start:0 ~stop:buckets (fun i ->
            let v = B.load b (B.elem8 b sorted i) in
            B.assign b chk (B.add b (B.muli b chk 1009L) v));
        B.emit b chk;
        B.halt b)
  in
  prog

let bench =
  {
    Wutil.name = "eqntott";
    kind = Wutil.Int_bench;
    description = "truth-table evaluation with counting sort";
    build;
  }
