(** The [compress] benchmark kernel; see the implementation header for the
    workload's character and construction. *)

(** Build the kernel's IR program at the given scale factor. *)
val build : int -> Rc_ir.Prog.t

val bench : Wutil.bench
