(** [lex]: table-driven DFA tokenisation.  Two independent automata scan
    the same buffer (the second checks a different token language),
    giving the scheduler parallel dependence chains while each chain
    carries the serial state dependence characteristic of lexers. *)

open Rc_isa
open Rc_ir
module B = Builder

let n_states = 12
let n_classes = 6

let build scale =
  let n = 2048 * scale in
  let r = Wutil.rng 31415L in
  let text = Wutil.random_bytes r n "abc019 ;\n" in
  (* char -> class table (256 entries) *)
  let cls = Array.make 256 0L in
  String.iter (fun c -> cls.(Char.code c) <- 1L) "abcdefghijklmnopqrstuvwxyz";
  String.iter (fun c -> cls.(Char.code c) <- 2L) "0123456789";
  cls.(Char.code ' ') <- 3L;
  cls.(Char.code '\n') <- 4L;
  cls.(Char.code ';') <- 5L;
  (* transition tables, deterministic pseudorandom but fixed *)
  let t1 =
    Array.init (n_states * n_classes) (fun k ->
        Int64.of_int ((k * 7) mod n_states))
  in
  let t2 =
    Array.init (n_states * n_classes) (fun k ->
        Int64.of_int (((k * 5) + 3) mod n_states))
  in
  let accept = Array.init n_states (fun k -> Int64.of_int (k land 1)) in
  let prog = B.program ~entry:"main" in
  Wutil.global_bytes prog "text" text;
  Wutil.global_words prog "cls" cls;
  Wutil.global_words prog "t1" t1;
  Wutil.global_words prog "t2" t2;
  Wutil.global_words prog "accept" accept;
  let _scan =
    B.define prog "scan" ~params:[ Reg.Int; Reg.Int ] ~ret:Reg.Int
      (fun b params ->
        let text_p, len =
          match params with [ x; y ] -> (x, y) | _ -> assert false
        in
        let cls_p = B.addr b "cls" in
        let t1_p = B.addr b "t1" in
        let t2_p = B.addr b "t2" in
        let acc_p = B.addr b "accept" in
        let st1 = B.cint b 0 in
        let st2 = B.cint b 1 in
        let tok1 = B.cint b 0 in
        let tok2 = B.cint b 0 in
        let sig_ = B.cint b 0 in
        B.for_ b ~start:(Op.C 0L) ~stop:(Op.V len) (fun i ->
            let c = B.loadb b (B.elem1 b text_p i) in
            let k = B.load b (B.elem8 b cls_p c) in
            let idx1 =
              B.add b (B.muli b st1 (Int64.of_int n_classes)) k
            in
            let idx2 =
              B.add b (B.muli b st2 (Int64.of_int n_classes)) k
            in
            B.assign b st1 (B.load b (B.elem8 b t1_p idx1));
            B.assign b st2 (B.load b (B.elem8 b t2_p idx2));
            let a1 = B.load b (B.elem8 b acc_p st1) in
            let a2 = B.load b (B.elem8 b acc_p st2) in
            B.assign b tok1 (B.add b tok1 a1);
            B.assign b tok2 (B.add b tok2 a2);
            B.assign b sig_
              (B.add b (B.muli b sig_ 17L)
                 (B.add b st1 (B.slli b st2 4L))));
        B.emit b tok1;
        B.emit b tok2;
        B.ret b (Some sig_))
  in
  let _main =
    B.define prog "main" ~params:[] (fun b _ ->
        let text_p = B.addr b "text" in
        let len = B.cint b n in
        let sig_ = B.call_i b "scan" [ text_p; len ] in
        B.emit b sig_;
        B.halt b)
  in
  prog

let bench =
  {
    Wutil.name = "lex";
    kind = Wutil.Int_bench;
    description = "dual DFA tokenisation over one buffer";
    build;
  }
