(** [eqn]: equation-typesetting arithmetic — dense fixed-point expression
    evaluation.  Three independent Horner chains per element over twelve
    coefficients held in registers across the loop: exactly the kind of
    code whose register requirement explodes after unrolling. *)

open Rc_isa
open Rc_ir
module B = Builder

let build scale =
  let n = 512 * scale in
  let r = Wutil.rng 7L in
  let xs = Wutil.random_words r n 1000 in
  let coef = Wutil.random_words r 12 50 in
  let prog = B.program ~entry:"main" in
  Wutil.global_words prog "xs" xs;
  Wutil.global_words prog "coef" coef;
  Builder.global prog "ys" ~bytes:(8 * n) ();
  let _eval =
    B.define prog "eval" ~params:[ Reg.Int; Reg.Int; Reg.Int ] ~ret:Reg.Int
      (fun b params ->
        let px, py, len =
          match params with
          | [ x; y; z ] -> (x, y, z)
          | _ -> assert false
        in
        let pc = B.addr b "coef" in
        (* Twelve coefficients live across the whole loop. *)
        let c = Array.init 12 (fun k -> B.load b ~off:(8 * k) pc) in
        let acc1 = B.cint b 0 in
        let acc2 = B.cint b 0 in
        let acc3 = B.cint b 0 in
        B.for_ b ~start:(Op.C 0L) ~stop:(Op.V len) (fun i ->
            let x = B.load b (B.elem8 b px i) in
            let horner c0 c1 c2 c3 =
              let t = B.add b (B.mul b c0 x) c1 in
              let t = B.add b (B.mul b t x) c2 in
              B.add b (B.mul b t x) c3
            in
            let p1 = horner c.(0) c.(1) c.(2) c.(3) in
            let p2 = horner c.(4) c.(5) c.(6) c.(7) in
            let p3 = horner c.(8) c.(9) c.(10) c.(11) in
            B.assign b acc1 (B.add b acc1 p1);
            B.assign b acc2 (B.xor_ b acc2 p2);
            B.assign b acc3 (B.add b acc3 (B.sub b p1 p3));
            B.store b ~src:(B.add b p1 (B.add b p2 p3)) (B.elem8 b py i));
        B.emit b acc1;
        B.emit b acc2;
        B.ret b (Some acc3))
  in
  let _main =
    B.define prog "main" ~params:[] (fun b _ ->
        let px = B.addr b "xs" in
        let py = B.addr b "ys" in
        let len = B.cint b n in
        let acc = B.call_i b "eval" [ px; py; len ] in
        B.emit b acc;
        (* Fold the output array so stores are observable. *)
        let sum = B.cint b 0 in
        B.for_ b ~start:(Op.C 0L) ~stop:(Op.V len) (fun i ->
            let y = B.load b (B.elem8 b py i) in
            B.assign b sum (B.add b (B.muli b sum 131L) y));
        B.emit b sum;
        B.halt b)
  in
  prog

let bench =
  {
    Wutil.name = "eqn";
    kind = Wutil.Int_bench;
    description = "fixed-point Horner expression evaluation";
    build;
  }
