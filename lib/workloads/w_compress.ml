(** [compress]: LZW-style dictionary compression — rolling prefix codes,
    an open-addressed code table in memory and a probe loop per input
    byte, as in the SPEC [compress] kernel — followed by a verification
    pass that re-reads the emitted code stream and folds it against the
    dictionary (the decompressor's table-walk access pattern). *)

open Rc_isa
open Rc_ir
module B = Builder

let hash_size = 4096 (* power of two *)

let build scale =
  let n = 1536 * scale in
  let r = Wutil.rng 90125L in
  (* Compressible text: repeated phrases with noise. *)
  let phrase = "the quick brown fox jumps over the lazy dog " in
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    if Wutil.next_int r 5 = 0 then
      Buffer.add_char buf "abcdefghijklmnopqrstuvwxyz".[Wutil.next_int r 26]
    else
      Buffer.add_string buf
        (String.sub phrase 0 (1 + Wutil.next_int r (String.length phrase - 1)))
  done;
  let text = Buffer.sub buf 0 n in
  let prog = B.program ~entry:"main" in
  Wutil.global_bytes prog "text" text;
  (* Two parallel arrays: keys and codes. *)
  Builder.global prog "hkeys" ~bytes:(8 * hash_size) ();
  Builder.global prog "hcodes" ~bytes:(8 * hash_size) ();
  (* emitted code stream, for the verification pass *)
  Builder.global prog "codes_out" ~bytes:(8 * (n + 2)) ();
  (* decoder table: code -> packed (prefix, last byte) *)
  Builder.global prog "dict" ~bytes:(8 * (256 + n + 2)) ();
  let _main =
    B.define prog "main" ~params:[] (fun b _ ->
        let text_p = B.addr b "text" in
        let keys = B.addr b "hkeys" in
        let codes = B.addr b "hcodes" in
        let out_p = B.addr b "codes_out" in
        let dict_p = B.addr b "dict" in
        let len = B.cint b n in
        let next_code = B.cint b 256 in
        let out_sum = B.cint b 0 in
        let out_count = B.cint b 0 in
        let cur = B.loadb b text_p in
        let mask = B.cint b (hash_size - 1) in
        B.for_ b ~start:(Op.C 1L) ~stop:(Op.V len) (fun i ->
            let ch = B.loadb b (B.elem1 b text_p i) in
            (* key for (cur, ch); 0 marks an empty slot so add 1 *)
            let key = B.addi b (B.add b (B.slli b cur 9L) ch) 1L in
            let h = B.fresh b Reg.Int in
            B.mov b ~dst:h
              ~src:(B.and_ b (B.add b (B.muli b key 2654435761L) (B.srli b key 7L)) mask);
            (* probe until the key or an empty slot is found *)
            let probing = B.cint b 1 in
            let found = B.cint b 0 in
            B.while_ b
              ~cond:(fun () -> (Opcode.Ne, probing, B.cint b 0))
              ~body:(fun () ->
                let slot = B.load b (B.elem8 b keys h) in
                B.if_ b Opcode.Eq slot key
                  ~then_:(fun () ->
                    B.seti b found 1L;
                    B.seti b probing 0L)
                  ~else_:(fun () ->
                    B.if_ b Opcode.Eq slot (B.cint b 0)
                      ~then_:(fun () -> B.seti b probing 0L)
                      ~else_:(fun () ->
                        B.assign b h (B.and_ b (B.addi b h 1L) mask))
                      ())
                  ());
            B.if_ b Opcode.Ne found (B.cint b 0)
              ~then_:(fun () ->
                (* extend the current phrase *)
                let code = B.load b (B.elem8 b codes h) in
                B.assign b cur code)
              ~else_:(fun () ->
                (* emit the phrase code, record the dictionary entry and
                   start a new phrase *)
                B.assign b out_sum (B.add b (B.muli b out_sum 131L) cur);
                B.store b ~src:cur (B.elem8 b out_p out_count);
                B.assign b out_count (B.addi b out_count 1L);
                B.store b ~src:key (B.elem8 b keys h);
                B.store b ~src:next_code (B.elem8 b codes h);
                (* decoder view: next_code = (prefix cur, last byte ch) *)
                B.store b
                  ~src:(B.add b (B.slli b cur 9L) ch)
                  (B.elem8 b dict_p next_code);
                B.assign b next_code (B.addi b next_code 1L);
                B.assign b cur ch)
              ());
        B.assign b out_sum (B.add b (B.muli b out_sum 131L) cur);
        B.store b ~src:cur (B.elem8 b out_p out_count);
        B.assign b out_count (B.addi b out_count 1L);
        B.emit b out_count;
        B.emit b next_code;
        B.emit b out_sum;
        (* verification pass: walk each emitted code back through the
           dictionary to its first byte, folding the bytes visited — the
           decompressor's pointer-chasing access pattern *)
        let verify = B.cint b 0 in
        B.for_ b ~start:(Op.C 0L) ~stop:(Op.V out_count) (fun i ->
            let code = B.fresh b Reg.Int in
            B.mov b ~dst:code ~src:(B.load b (B.elem8 b out_p i));
            let walking = B.cint b 1 in
            B.while_ b
              ~cond:(fun () -> (Opcode.Ne, walking, B.cint b 0))
              ~body:(fun () ->
                B.if_ b Opcode.Lt code (B.cint b 256)
                  ~then_:(fun () ->
                    B.assign b verify (B.add b (B.muli b verify 31L) code);
                    B.seti b walking 0L)
                  ~else_:(fun () ->
                    let packed = B.load b (B.elem8 b dict_p code) in
                    B.assign b verify
                      (B.add b (B.muli b verify 31L) (B.andi b packed 511L));
                    B.assign b code (B.srli b packed 9L))
                  ()));
        B.emit b verify;
        B.halt b)
  in
  prog

let bench =
  {
    Wutil.name = "compress";
    kind = Wutil.Int_bench;
    description = "LZW-style dictionary compression";
    build;
  }
