(** [espresso]: two-level logic minimisation — pairwise cube operations
    over a cover stored as bit-vectors: intersection emptiness,
    containment and distance-1 merge tests, all branch-free in the inner
    loop (espresso's hot [cdist]/[contains] kernels). *)

open Rc_isa
open Rc_ir
module B = Builder

let words_per_cube = 2

let build scale =
  let m = 96 * scale in
  let r = Wutil.rng 555L in
  let cubes =
    Array.init (m * words_per_cube) (fun _ ->
        (* Cube positional notation: pairs of bits; bias towards 11
           (don't care) for realistic sparsity. *)
        let w = ref 0L in
        for k = 0 to 31 do
          let v =
            match Wutil.next_int r 4 with
            | 0 -> 1
            | 1 -> 2
            | _ -> 3
          in
          w := Int64.logor !w (Int64.shift_left (Int64.of_int v) (2 * k))
        done;
        !w)
  in
  let prog = B.program ~entry:"main" in
  Wutil.global_words prog "cubes" cubes;
  let _pairs =
    B.define prog "cube_pairs" ~params:[ Reg.Int ] ~ret:Reg.Int (fun b params ->
        let count = match params with [ x ] -> x | _ -> assert false in
        let base = B.addr b "cubes" in
        let empty = B.cint b 0 in
        let contains = B.cint b 0 in
        let mergeable = B.cint b 0 in
        let chk = B.cint b 0 in
        B.for_ b ~start:(Op.C 0L) ~stop:(Op.V count) (fun i ->
            let pi = B.add b base (B.muli b i (Int64.of_int (8 * words_per_cube))) in
            let a0 = B.load b ~off:0 pi in
            let a1 = B.load b ~off:8 pi in
            B.for_ b ~start:(Op.C 0L) ~stop:(Op.V count) (fun j ->
                let pj =
                  B.add b base (B.muli b j (Int64.of_int (8 * words_per_cube)))
                in
                let b0 = B.load b ~off:0 pj in
                let b1 = B.load b ~off:8 pj in
                (* intersection *)
                let i0 = B.and_ b a0 b0 in
                let i1 = B.and_ b a1 b1 in
                (* a variable column is empty if both its bits are 0:
                   detect via (x | x>>1) & odd-mask missing a column *)
                let odd = B.cint b 0x5555555555555555 in
                let c0 = B.and_ b (B.or_ b i0 (B.srli b i0 1L)) odd in
                let c1 = B.and_ b (B.or_ b i1 (B.srli b i1 1L)) odd in
                let full0 = B.seq b c0 odd in
                let full1 = B.seq b c1 odd in
                let nonempty = B.and_ b full0 full1 in
                B.assign b empty
                  (B.add b empty (B.xori b nonempty 1L));
                (* containment: a contains b iff b & a = b *)
                let e0 = B.seq b i0 b0 in
                let e1 = B.seq b i1 b1 in
                B.assign b contains (B.add b contains (B.and_ b e0 e1));
                (* rough distance-1 merge test: identical second word *)
                let same1 = B.seq b a1 b1 in
                let differ0 = B.xori b (B.seq b a0 b0) 1L in
                B.assign b mergeable
                  (B.add b mergeable (B.and_ b same1 differ0));
                B.assign b chk
                  (B.add b (B.muli b chk 7L) (B.xor_ b i0 i1))));
        B.emit b empty;
        B.emit b contains;
        B.emit b mergeable;
        B.ret b (Some chk))
  in
  let _main =
    B.define prog "main" ~params:[] (fun b _ ->
        let chk = B.call_i b "cube_pairs" [ B.cint b m ] in
        B.emit b chk;
        B.halt b)
  in
  prog

let bench =
  {
    Wutil.name = "espresso";
    kind = Wutil.Int_bench;
    description = "pairwise cube operations on bit-vector covers";
    build;
  }
