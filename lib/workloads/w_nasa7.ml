(** [nasa7]: a suite of small double-precision kernels in the spirit of
    the NASA7 collection — blocked matrix-vector products, batched dot
    products and a Gaussian-elimination row update.  Every kernel keeps
    a handful of accumulators and row pointers live across an unrollable
    inner loop. *)

open Rc_isa
open Rc_ir
module B = Builder

let build scale =
  let n = 32 * scale in
  let r = Wutil.rng 700L in
  let a = Wutil.random_doubles r (n * n) in
  let x = Wutil.random_doubles r n in
  let v1 = Wutil.random_doubles r n in
  let v2 = Wutil.random_doubles r n in
  let v3 = Wutil.random_doubles r n in
  let v4 = Wutil.random_doubles r n in
  let prog = B.program ~entry:"main" in
  Wutil.global_doubles prog "A" a;
  Wutil.global_doubles prog "x" x;
  Wutil.global_doubles prog "v1" v1;
  Wutil.global_doubles prog "v2" v2;
  Wutil.global_doubles prog "v3" v3;
  Wutil.global_doubles prog "v4" v4;
  Builder.global prog "y" ~bytes:(8 * n) ();
  let nn = Int64.of_int n in
  (* y = A x, two rows at a time *)
  let _matvec =
    B.define prog "matvec" ~params:[] (fun b _ ->
        let pa = B.addr b "A" in
        let px = B.addr b "x" in
        let py = B.addr b "y" in
        B.for_ b ~step:2L ~start:(Op.C 0L) ~stop:(Op.C nn) (fun i ->
            let row0 = B.muli b i nn in
            let row1 = B.addi b row0 nn in
            let acc0 = B.cf b 0.0 in
            let acc1 = B.cf b 0.0 in
            B.for_ b ~start:(Op.C 0L) ~stop:(Op.C nn) (fun k ->
                let xv = B.fload b (B.elem8 b px k) in
                let a0 = B.fload b (B.elem8 b pa (B.add b row0 k)) in
                let a1 = B.fload b (B.elem8 b pa (B.add b row1 k)) in
                B.assign b acc0 (B.fadd b acc0 (B.fmul b a0 xv));
                B.assign b acc1 (B.fadd b acc1 (B.fmul b a1 xv)));
            B.fstore b ~src:acc0 (B.elem8 b py i);
            B.fstore b ~src:acc1 (B.elem8 b py (B.addi b i 1L)));
        B.ret b None)
  in
  (* four simultaneous dot products against y *)
  let _dots =
    B.define prog "dots" ~params:[] ~ret:Reg.Float (fun b _ ->
        let py = B.addr b "y" in
        let p1 = B.addr b "v1" in
        let p2 = B.addr b "v2" in
        let p3 = B.addr b "v3" in
        let p4 = B.addr b "v4" in
        let d1 = B.cf b 0.0 in
        let d2 = B.cf b 0.0 in
        let d3 = B.cf b 0.0 in
        let d4 = B.cf b 0.0 in
        B.for_ b ~start:(Op.C 0L) ~stop:(Op.C nn) (fun k ->
            let yv = B.fload b (B.elem8 b py k) in
            B.assign b d1 (B.fadd b d1 (B.fmul b yv (B.fload b (B.elem8 b p1 k))));
            B.assign b d2 (B.fadd b d2 (B.fmul b yv (B.fload b (B.elem8 b p2 k))));
            B.assign b d3 (B.fadd b d3 (B.fmul b yv (B.fload b (B.elem8 b p3 k))));
            B.assign b d4 (B.fadd b d4 (B.fmul b yv (B.fload b (B.elem8 b p4 k)))));
        B.femit b d1;
        B.femit b d2;
        B.femit b d3;
        let s = B.fadd b (B.fadd b d1 d2) (B.fadd b d3 d4) in
        B.ret b (Some s))
  in
  (* one Gaussian elimination sweep with the first row as pivot *)
  let _gauss =
    B.define prog "gauss_step" ~params:[] ~ret:Reg.Float (fun b _ ->
        let pa = B.addr b "A" in
        let pivot = B.fload b pa in
        let residual = B.cf b 0.0 in
        B.for_ b ~start:(Op.C 1L) ~stop:(Op.C nn) (fun i ->
            let rowi = B.muli b i nn in
            let lead = B.fload b (B.elem8 b pa rowi) in
            let factor = B.fdiv_ b lead pivot in
            B.for_ b ~start:(Op.C 0L) ~stop:(Op.C nn) (fun k ->
                let top = B.fload b (B.elem8 b pa k) in
                let cell = B.elem8 b pa (B.add b rowi k) in
                let v = B.fsub b (B.fload b cell) (B.fmul b factor top) in
                B.fstore b ~src:v cell);
            B.assign b residual (B.fadd b residual factor));
        B.ret b (Some residual))
  in
  let _main =
    B.define prog "main" ~params:[] (fun b _ ->
        B.call b "matvec" [];
        let dots = B.call_f b "dots" [] in
        B.femit b dots;
        let res = B.call_f b "gauss_step" [] in
        B.femit b res;
        (* fold the eliminated matrix's first column *)
        let pa = B.addr b "A" in
        let fold = B.cf b 0.0 in
        B.for_ b ~start:(Op.C 0L) ~stop:(Op.C nn) (fun i ->
            let v = B.fload b (B.elem8 b pa (B.muli b i nn)) in
            B.assign b fold (B.fadd b fold (B.fabs_ b v)));
        B.femit b fold;
        B.halt b)
  in
  prog

let bench =
  {
    Wutil.name = "nasa7";
    kind = Wutil.Float_bench;
    description = "matrix-vector, batched dots and Gaussian elimination";
    build;
  }
