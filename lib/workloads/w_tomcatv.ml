(** [tomcatv]: vectorised mesh generation — Jacobi-style sweeps of a
    9-point stencil over two coupled grids with residual tracking.  Each
    stencil point consumes eight neighbour values and five coefficients
    (all live simultaneously), the signature register profile of the
    SPEC [tomcatv] loop nests. *)

open Rc_isa
open Rc_ir
module B = Builder

let iters = 2

let build scale =
  let m = 18 * scale in
  let r = Wutil.rng 999L in
  let gx = Wutil.random_doubles r (m * m) in
  let gy = Wutil.random_doubles r (m * m) in
  let prog = B.program ~entry:"main" in
  Wutil.global_doubles prog "X" gx;
  Wutil.global_doubles prog "Y" gy;
  Builder.global prog "XN" ~bytes:(8 * m * m) ();
  Builder.global prog "YN" ~bytes:(8 * m * m) ();
  let mm = Int64.of_int m in
  (* one sweep: src -> dst, returns the residual *)
  let _sweep =
    B.define prog "sweep" ~params:[ Reg.Int; Reg.Int; Reg.Int; Reg.Int ]
      ~ret:Reg.Float (fun b params ->
        let px, py, pxn, pyn =
          match params with
          | [ a; b'; c; d ] -> (a, b', c, d)
          | _ -> assert false
        in
        let c1 = B.cf b 0.25 in
        let c2 = B.cf b 0.125 in
        let c3 = B.cf b 0.5 in
        let c4 = B.cf b 0.0625 in
        let residual = B.cf b 0.0 in
        B.for_ b ~start:(Op.C 1L) ~stop:(Op.C (Int64.sub mm 1L)) (fun i ->
            let row = B.muli b i mm in
            let rowm = B.sub b row (B.ci b mm) in
            let rowp = B.add b row (B.ci b mm) in
            B.for_ b ~start:(Op.C 1L) ~stop:(Op.C (Int64.sub mm 1L)) (fun j ->
                let at base row' dj =
                  B.fload b
                    (B.elem8 b base (B.add b row' (B.addi b j (Int64.of_int dj))))
                in
                (* 9-point stencil on X *)
                let xn = at px rowm 0 and xs = at px rowp 0 in
                let xw = at px row (-1) and xe = at px row 1 in
                let xnw = at px rowm (-1) and xne = at px rowm 1 in
                let xsw = at px rowp (-1) and xse = at px rowp 1 in
                let xc = at px row 0 in
                let cross = B.fadd b (B.fadd b xn xs) (B.fadd b xw xe) in
                let diag = B.fadd b (B.fadd b xnw xne) (B.fadd b xsw xse) in
                (* couple in Y's cross neighbours *)
                let yn = at py rowm 0 and ys = at py rowp 0 in
                let ycross = B.fadd b yn ys in
                let vx =
                  B.fadd b
                    (B.fadd b (B.fmul b c1 cross) (B.fmul b c4 diag))
                    (B.fmul b c2 ycross)
                in
                let vx = B.fadd b (B.fmul b c3 xc) (B.fmul b c2 vx) in
                B.fstore b ~src:vx
                  (B.elem8 b pxn (B.add b row j));
                (* Y update uses its own cross plus X coupling *)
                let yw = at py row (-1) and ye = at py row 1 in
                let yc = at py row 0 in
                let ycross2 = B.fadd b (B.fadd b yn ys) (B.fadd b yw ye) in
                let vy =
                  B.fadd b (B.fmul b c1 ycross2)
                    (B.fmul b c2 (B.fadd b xc cross))
                in
                let vy = B.fadd b (B.fmul b c3 yc) (B.fmul b c2 vy) in
                B.fstore b ~src:vy (B.elem8 b pyn (B.add b row j));
                let dx = B.fabs_ b (B.fsub b vx xc) in
                let dy = B.fabs_ b (B.fsub b vy yc) in
                B.assign b residual (B.fadd b residual (B.fadd b dx dy))));
        B.ret b (Some residual))
  in
  let _main =
    B.define prog "main" ~params:[] (fun b _ ->
        let px = B.addr b "X" in
        let py = B.addr b "Y" in
        let pxn = B.addr b "XN" in
        let pyn = B.addr b "YN" in
        for k = 1 to iters do
          let src_x, src_y, dst_x, dst_y =
            if k land 1 = 1 then (px, py, pxn, pyn) else (pxn, pyn, px, py)
          in
          let res = B.call_f b "sweep" [ src_x; src_y; dst_x; dst_y ] in
          B.femit b res
        done;
        (* fold the final grid *)
        let final_x = if iters land 1 = 1 then pxn else px in
        let fold = B.cf b 0.0 in
        let total = Int64.of_int (m * m) in
        B.for_ b ~start:(Op.C 0L) ~stop:(Op.C total) (fun i ->
            B.assign b fold (B.fadd b fold (B.fload b (B.elem8 b final_x i))));
        B.femit b fold;
        B.halt b)
  in
  prog

let bench =
  {
    Wutil.name = "tomcatv";
    kind = Wutil.Float_bench;
    description = "coupled 9-point stencil mesh sweeps";
    build;
  }
