(** All benchmark kernels, in the paper's order (section 5.3): nine
    integer and three floating-point programs. *)

let all () : Wutil.bench list =
  [
    W_cccp.bench;
    W_cmp.bench;
    W_compress.bench;
    W_eqn.bench;
    W_eqntott.bench;
    W_espresso.bench;
    W_grep.bench;
    W_lex.bench;
    W_yacc.bench;
    W_matrix300.bench;
    W_nasa7.bench;
    W_tomcatv.bench;
  ]

let find name =
  match List.find_opt (fun (b : Wutil.bench) -> b.Wutil.name = name) (all ()) with
  | Some b -> b
  | None -> invalid_arg ("Registry.find: unknown benchmark " ^ name)

let names () = List.map (fun (b : Wutil.bench) -> b.Wutil.name) (all ())

let integer () =
  List.filter (fun (b : Wutil.bench) -> b.Wutil.kind = Wutil.Int_bench) (all ())

let floating () =
  List.filter (fun (b : Wutil.bench) -> b.Wutil.kind = Wutil.Float_bench) (all ())
