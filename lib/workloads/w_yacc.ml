(** [yacc]: LR-style shift/reduce parsing — an operator-precedence
    parser over a generated token stream, with explicit value and
    operator stacks in memory and a [reduce] helper called from the hot
    loop (stack traffic plus procedure-interface register traffic). *)

open Rc_isa
open Rc_ir
module B = Builder

(* token encoding *)
let t_semi = 10000L
let t_plus = 10001L
let t_minus = 10002L
let t_times = 10003L

let build scale =
  let n_tokens = 768 * scale in
  let r = Wutil.rng 777L in
  let toks = Array.make n_tokens t_semi in
  let pos = ref 0 in
  let emit_tok t =
    if !pos < n_tokens then begin
      toks.(!pos) <- t;
      incr pos
    end
  in
  while !pos < n_tokens - 1 do
    (* expression: num (op num)* ; *)
    emit_tok (Int64.of_int (Wutil.next_int r 1000));
    let ops = Wutil.next_int r 6 in
    for _ = 1 to ops do
      (match Wutil.next_int r 3 with
      | 0 -> emit_tok t_plus
      | 1 -> emit_tok t_minus
      | _ -> emit_tok t_times);
      emit_tok (Int64.of_int (Wutil.next_int r 1000))
    done;
    emit_tok t_semi
  done;
  toks.(n_tokens - 1) <- t_semi;
  let prog = B.program ~entry:"main" in
  Wutil.global_words prog "tokens" toks;
  Builder.global prog "vstack" ~bytes:(8 * 256) ();
  Builder.global prog "ostack" ~bytes:(8 * 256) ();
  (* reduce(vsp, osp) -> new vsp; pops one op and two values, pushes the
     result. *)
  let _reduce =
    B.define prog "reduce" ~params:[ Reg.Int; Reg.Int ] ~ret:Reg.Int
      (fun b params ->
        let vsp, osp =
          match params with [ x; y ] -> (x, y) | _ -> assert false
        in
        let vstack = B.addr b "vstack" in
        let ostack = B.addr b "ostack" in
        let op = B.load b (B.elem8 b ostack (B.subi b osp 1L)) in
        let rhs = B.load b (B.elem8 b vstack (B.subi b vsp 1L)) in
        let lhs = B.load b (B.elem8 b vstack (B.subi b vsp 2L)) in
        let res = B.fresh b Reg.Int in
        B.if_ b Opcode.Eq op (B.ci b t_plus)
          ~then_:(fun () -> B.assign b res (B.add b lhs rhs))
          ~else_:(fun () ->
            B.if_ b Opcode.Eq op (B.ci b t_minus)
              ~then_:(fun () -> B.assign b res (B.sub b lhs rhs))
              ~else_:(fun () ->
                B.assign b res (B.andi b (B.mul b lhs rhs) 0xFFFFFFL))
              ())
          ();
        B.store b ~src:res (B.elem8 b vstack (B.subi b vsp 2L));
        B.ret b (Some (B.subi b vsp 1L)))
  in
  let _main =
    B.define prog "main" ~params:[] (fun b _ ->
        let toks_p = B.addr b "tokens" in
        let vstack = B.addr b "vstack" in
        let ostack = B.addr b "ostack" in
        let len = B.cint b n_tokens in
        let vsp = B.cint b 0 in
        let osp = B.cint b 0 in
        let reductions = B.cint b 0 in
        let results = B.cint b 0 in
        let prec op =
          (* 2 for *, 1 for + and -, computed branch-free *)
          let is_times = B.seq b op (B.ci b t_times) in
          B.addi b is_times 1L
        in
        B.for_ b ~start:(Op.C 0L) ~stop:(Op.V len) (fun i ->
            let t = B.load b (B.elem8 b toks_p i) in
            B.if_ b Opcode.Lt t (B.ci b t_semi)
              ~then_:(fun () ->
                (* shift a number *)
                B.store b ~src:t (B.elem8 b vstack vsp);
                B.assign b vsp (B.addi b vsp 1L))
              ~else_:(fun () ->
                B.if_ b Opcode.Eq t (B.ci b t_semi)
                  ~then_:(fun () ->
                    (* flush: reduce everything, pop the result *)
                    B.while_ b
                      ~cond:(fun () -> (Opcode.Gt, osp, B.cint b 0))
                      ~body:(fun () ->
                        let v = B.call_i b "reduce" [ vsp; osp ] in
                        B.assign b vsp v;
                        B.assign b osp (B.subi b osp 1L);
                        B.assign b reductions (B.addi b reductions 1L));
                    B.if_ b Opcode.Gt vsp (B.cint b 0)
                      ~then_:(fun () ->
                        let v =
                          B.load b (B.elem8 b vstack (B.subi b vsp 1L))
                        in
                        B.assign b results
                          (B.add b (B.muli b results 31L) v);
                        B.assign b vsp (B.subi b vsp 1L))
                      ())
                  ~else_:(fun () ->
                    (* operator: reduce while top precedence >= ours *)
                    let p = prec t in
                    let looping = B.cint b 1 in
                    B.while_ b
                      ~cond:(fun () -> (Opcode.Ne, looping, B.cint b 0))
                      ~body:(fun () ->
                        B.if_ b Opcode.Le osp (B.cint b 0)
                          ~then_:(fun () -> B.seti b looping 0L)
                          ~else_:(fun () ->
                            let top =
                              B.load b (B.elem8 b ostack (B.subi b osp 1L))
                            in
                            let tp = prec top in
                            B.if_ b Opcode.Lt tp p
                              ~then_:(fun () -> B.seti b looping 0L)
                              ~else_:(fun () ->
                                let v = B.call_i b "reduce" [ vsp; osp ] in
                                B.assign b vsp v;
                                B.assign b osp (B.subi b osp 1L);
                                B.assign b reductions
                                  (B.addi b reductions 1L))
                              ())
                          ());
                    B.store b ~src:t (B.elem8 b ostack osp);
                    B.assign b osp (B.addi b osp 1L))
                  ())
              ());
        B.emit b reductions;
        B.emit b results;
        B.halt b)
  in
  prog

let bench =
  {
    Wutil.name = "yacc";
    kind = Wutil.Int_bench;
    description = "shift/reduce expression parsing with helper calls";
    build;
  }
