(** [cccp]: the GNU C preprocessor's character — token scanning over a
    byte buffer, hashing each identifier, probing a macro table and
    accumulating the expansion.  Branchy byte-at-a-time code with a
    helper call per token (procedure-interface register traffic). *)

open Rc_isa
open Rc_ir
module B = Builder

let table_size = 256

let build scale =
  let n = 1536 * scale in
  let r = Wutil.rng 1001L in
  let text = Wutil.random_bytes r n "abcdefgh  \n" in
  (* Macro table: open addressing, key = hash, value = replacement. *)
  let table = Array.make (2 * table_size) 0L in
  for _ = 1 to 180 do
    let h = Wutil.next_int r table_size in
    table.((2 * h) + 0) <- Int64.of_int (1 + Wutil.next_int r 0xFFFF);
    table.((2 * h) + 1) <- Int64.of_int (Wutil.next_int r 100000)
  done;
  let prog = B.program ~entry:"main" in
  Wutil.global_bytes prog "text" text;
  Wutil.global_words prog "macros" table;
  (* hash_token(ptr, len) -> hash of the token bytes *)
  let _hash =
    B.define prog "hash_token" ~params:[ Reg.Int; Reg.Int ] ~ret:Reg.Int
      (fun b params ->
        let ptr, len =
          match params with [ x; y ] -> (x, y) | _ -> assert false
        in
        let h = B.cint b 5381 in
        B.for_ b ~start:(Op.C 0L) ~stop:(Op.V len) (fun i ->
            let c = B.loadb b (B.elem1 b ptr i) in
            B.assign b h (B.add b (B.muli b h 33L) c));
        B.ret b (Some h))
  in
  (* lookup(h) -> value or 0 *)
  let _lookup =
    B.define prog "lookup" ~params:[ Reg.Int ] ~ret:Reg.Int (fun b params ->
        let h = match params with [ x ] -> x | _ -> assert false in
        let tbl = B.addr b "macros" in
        let key = B.addi b (B.andi b h (Int64.of_int (table_size - 1))) 1L in
        let slot = B.muli b (B.subi b key 1L) 16L in
        let k = B.load b (B.add b tbl slot) in
        let result = B.cint b 0 in
        B.if_ b Opcode.Ne k (B.cint b 0)
          ~then_:(fun () ->
            let v = B.load b ~off:8 (B.add b tbl slot) in
            B.assign b result (B.add b v k))
          ();
        B.ret b (Some result))
  in
  let _main =
    B.define prog "main" ~params:[] (fun b _ ->
        let text_p = B.addr b "text" in
        let len = B.cint b n in
        let pos = B.cint b 0 in
        let expansions = B.cint b 0 in
        let checksum = B.cint b 0 in
        let tokens = B.cint b 0 in
        let space = B.cint b 32 in
        B.while_ b
          ~cond:(fun () -> (Opcode.Lt, pos, len))
          ~body:(fun () ->
            let c = B.loadb b (B.elem1 b text_p pos) in
            B.if_ b Opcode.Le c space
              ~then_:(fun () -> B.assign b pos (B.addi b pos 1L))
              ~else_:(fun () ->
                (* find the end of the token *)
                let tok_start = B.fresh b Reg.Int in
                B.mov b ~dst:tok_start ~src:pos;
                let scanning = B.cint b 1 in
                B.while_ b
                  ~cond:(fun () -> (Opcode.Ne, scanning, B.cint b 0))
                  ~body:(fun () ->
                    B.if_ b Opcode.Ge pos len
                      ~then_:(fun () -> B.seti b scanning 0L)
                      ~else_:(fun () ->
                        let ch = B.loadb b (B.elem1 b text_p pos) in
                        B.if_ b Opcode.Le ch space
                          ~then_:(fun () -> B.seti b scanning 0L)
                          ~else_:(fun () -> B.assign b pos (B.addi b pos 1L))
                          ())
                      ());
                let tok_len = B.sub b pos tok_start in
                let tok_ptr = B.add b text_p tok_start in
                let h = B.call_i b "hash_token" [ tok_ptr; tok_len ] in
                let v = B.call_i b "lookup" [ h ] in
                B.assign b tokens (B.addi b tokens 1L);
                B.if_ b Opcode.Ne v (B.cint b 0)
                  ~then_:(fun () ->
                    B.assign b expansions (B.addi b expansions 1L);
                    B.assign b checksum
                      (B.add b (B.muli b checksum 31L) v))
                  ~else_:(fun () ->
                    B.assign b checksum (B.add b checksum h))
                  ())
              ());
        B.emit b tokens;
        B.emit b expansions;
        B.emit b checksum;
        B.halt b)
  in
  prog

let bench =
  {
    Wutil.name = "cccp";
    kind = Wutil.Int_bench;
    description = "token scanning and macro-table expansion";
    build;
  }
