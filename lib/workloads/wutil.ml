(** Shared helpers for the synthetic benchmark kernels: a deterministic
    PRNG for input generation, data initialisers and builder idioms. *)

open Rc_isa
open Rc_ir

(** xorshift64* — deterministic across platforms, used to generate every
    workload input. *)
type rng = { mutable s : int64 }

let rng seed = { s = (if Int64.equal seed 0L then 0x9E3779B97F4A7C15L else seed) }

let next r =
  let open Int64 in
  let x = r.s in
  let x = logxor x (shift_left x 13) in
  let x = logxor x (shift_right_logical x 7) in
  let x = logxor x (shift_left x 17) in
  r.s <- x;
  mul x 0x2545F4914F6CDD1DL

(** Uniform in [0, bound). *)
let next_int r bound =
  let v = Int64.rem (next r) (Int64.of_int bound) in
  Int64.to_int (Int64.abs v)

let next_float r =
  (* in (0, 1) *)
  let v = Int64.to_float (Int64.logand (next r) 0xFFFFFFFFL) in
  (v +. 1.0) /. 4294967297.0

let words_of_rng r n f = Array.init n (fun i -> f r i)

let random_words r n bound =
  Array.init n (fun _ -> Int64.of_int (next_int r bound))

let random_bytes r n alphabet =
  String.init n (fun _ ->
      alphabet.[next_int r (String.length alphabet)])

let random_doubles r n = Array.init n (fun _ -> next_float r)

(** Declare a global initialised with 64-bit words. *)
let global_words prog name ws =
  Builder.global prog name ~bytes:(8 * Array.length ws)
    ~init:(Mcode.Words ws) ()

let global_doubles prog name ds =
  Builder.global prog name ~bytes:(8 * Array.length ds)
    ~init:(Mcode.Doubles ds) ()

let global_bytes prog name s =
  Builder.global prog name ~bytes:(String.length s) ~init:(Mcode.Bytes s) ()

(** The kind of register file a benchmark stresses. *)
type kind = Int_bench | Float_bench

type bench = {
  name : string;
  kind : kind;
  description : string;
  build : int -> Prog.t;  (** scale factor (>= 1) *)
}
