(** [matrix300]: dense double-precision matrix multiply (the SPEC
    kernel's character, at a simulator-friendly size) plus a scaled
    matrix accumulation.  The i-k-j loop keeps [a(i,k)] live across the
    unrollable inner loop; unrolling creates parallel multiply-add
    chains — the classic floating-point register-pressure generator. *)


open Rc_ir
module B = Builder

let build scale =
  let n = 16 * scale in
  let r = Wutil.rng 300L in
  let a = Wutil.random_doubles r (n * n) in
  let bm = Wutil.random_doubles r (n * n) in
  let prog = B.program ~entry:"main" in
  Wutil.global_doubles prog "A" a;
  Wutil.global_doubles prog "Bm" bm;
  Builder.global prog "C" ~bytes:(8 * n * n) ();
  Builder.global prog "D" ~bytes:(8 * n * n) ();
  let nn = Int64.of_int n in
  (* C = A * B with 2x2 register blocking: four dot-product accumulators
     live across the unrollable k-loop. *)
  let _matmul =
    B.define prog "matmul" ~params:[] (fun b _ ->
        let pa = B.addr b "A" in
        let pb = B.addr b "Bm" in
        let pc = B.addr b "C" in
        B.for_ b ~step:2L ~start:(Op.C 0L) ~stop:(Op.C nn) (fun i ->
            let row0 = B.muli b i nn in
            let row1 = B.addi b row0 nn in
            B.for_ b ~step:2L ~start:(Op.C 0L) ~stop:(Op.C nn) (fun j ->
                let acc00 = B.cf b 0.0 in
                let acc01 = B.cf b 0.0 in
                let acc10 = B.cf b 0.0 in
                let acc11 = B.cf b 0.0 in
                B.for_ b ~start:(Op.C 0L) ~stop:(Op.C nn) (fun k ->
                    let a0 = B.fload b (B.elem8 b pa (B.add b row0 k)) in
                    let a1 = B.fload b (B.elem8 b pa (B.add b row1 k)) in
                    let rowk = B.add b (B.muli b k nn) j in
                    let b0 = B.fload b (B.elem8 b pb rowk) in
                    let b1 = B.fload b ~off:8 (B.elem8 b pb rowk) in
                    B.assign b acc00 (B.fadd b acc00 (B.fmul b a0 b0));
                    B.assign b acc01 (B.fadd b acc01 (B.fmul b a0 b1));
                    B.assign b acc10 (B.fadd b acc10 (B.fmul b a1 b0));
                    B.assign b acc11 (B.fadd b acc11 (B.fmul b a1 b1)));
                let c00 = B.elem8 b pc (B.add b row0 j) in
                let c10 = B.elem8 b pc (B.add b row1 j) in
                B.fstore b ~src:acc00 c00;
                B.fstore b ~off:8 ~src:acc01 c00;
                B.fstore b ~src:acc10 c10;
                B.fstore b ~off:8 ~src:acc11 c10));
        B.ret b None)
  in
  (* D = alpha*C + beta*A, element-wise with several live constants *)
  let _saxpyish =
    B.define prog "axpy" ~params:[] (fun b _ ->
        let pa = B.addr b "A" in
        let pc = B.addr b "C" in
        let pd = B.addr b "D" in
        let alpha = B.cf b 0.75 in
        let beta = B.cf b 1.25 in
        let gamma = B.cf b 0.0625 in
        let total = Int64.of_int (n * n) in
        B.for_ b ~start:(Op.C 0L) ~stop:(Op.C total) (fun i ->
            let c = B.fload b (B.elem8 b pc i) in
            let av = B.fload b (B.elem8 b pa i) in
            let v = B.fadd b (B.fmul b alpha c) (B.fmul b beta av) in
            let v = B.fadd b v (B.fmul b gamma (B.fmul b c av)) in
            B.fstore b ~src:v (B.elem8 b pd i));
        B.ret b None)
  in
  let _main =
    B.define prog "main" ~params:[] (fun b _ ->
        B.call b "matmul" [];
        B.call b "axpy" [];
        (* fold D and the diagonal of C *)
        let pc = B.addr b "C" in
        let pd = B.addr b "D" in
        let sum = B.cf b 0.0 in
        let total = Int64.of_int (n * n) in
        B.for_ b ~start:(Op.C 0L) ~stop:(Op.C total) (fun i ->
            B.assign b sum (B.fadd b sum (B.fload b (B.elem8 b pd i))));
        let diag = B.cf b 0.0 in
        B.for_ b ~start:(Op.C 0L) ~stop:(Op.C nn) (fun i ->
            let idx = B.add b (B.muli b i nn) i in
            B.assign b diag (B.fadd b diag (B.fload b (B.elem8 b pc idx))));
        B.femit b sum;
        B.femit b diag;
        B.halt b)
  in
  prog

let bench =
  {
    Wutil.name = "matrix300";
    kind = Wutil.Float_bench;
    description = "dense double-precision matrix multiply";
    build;
  }
