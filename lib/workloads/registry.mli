(** All benchmark kernels, in the paper's order (section 5.3): nine
    integer and three floating-point programs. *)

val all : unit -> Wutil.bench list

(** @raise Invalid_argument for an unknown name. *)
val find : string -> Wutil.bench

val names : unit -> string list
val integer : unit -> Wutil.bench list
val floating : unit -> Wutil.bench list
