(** [cmp]: byte-wise comparison of two buffers — the character of the
    SPEC-era [cmp] utility.  A hot branch-free scan accumulates mismatch
    counts and rolling checksums of both buffers (unrollable by the ILP
    optimiser), followed by a branchy first-difference search. *)

open Rc_isa
open Rc_ir
module B = Builder

let build scale =
  let n = 1024 * scale in
  let r = Wutil.rng 42L in
  let s1 = Wutil.random_bytes r n "abcdefgh" in
  (* A mostly-equal second buffer: sparse differences, like comparing
     two revisions of a file. *)
  let s2 =
    String.map
      (fun c ->
        if Wutil.next_int r 97 = 0 then Char.chr (Char.code c lxor 1) else c)
      s1
  in
  let prog = B.program ~entry:"main" in
  Wutil.global_bytes prog "bufa" s1;
  Wutil.global_bytes prog "bufb" s2;
  let _scan =
    B.define prog "scan" ~params:[ Reg.Int; Reg.Int; Reg.Int ] ~ret:Reg.Int
      (fun b params ->
        let pa, pb, len =
          match params with
          | [ x; y; z ] -> (x, y, z)
          | _ -> assert false
        in
        let diff = B.cint b 0 in
        let suma = B.cint b 0 in
        let sumb = B.cint b 0 in
        let wsum = B.cint b 0 in
        B.for_ b ~start:(Op.C 0L) ~stop:(Op.V len) (fun i ->
            let ca = B.loadb b (B.elem1 b pa i) in
            let cb = B.loadb b (B.elem1 b pb i) in
            let equal = B.seq b ca cb in
            let ne = B.xori b equal 1L in
            B.assign b diff (B.add b diff ne);
            B.assign b suma (B.add b (B.muli b suma 31L) ca);
            B.assign b sumb (B.add b (B.muli b sumb 31L) cb);
            B.assign b wsum (B.add b wsum (B.mul b ne i)));
        B.emit b suma;
        B.emit b sumb;
        B.emit b wsum;
        B.ret b (Some diff))
  in
  let _first =
    B.define prog "first_diff" ~params:[ Reg.Int; Reg.Int; Reg.Int ]
      ~ret:Reg.Int (fun b params ->
        let pa, pb, len =
          match params with
          | [ x; y; z ] -> (x, y, z)
          | _ -> assert false
        in
        let i = B.cint b 0 in
        let res = B.cint b (-1) in
        let stop = B.cint b 0 in
        B.while_ b
          ~cond:(fun () -> (Opcode.Eq, stop, B.cint b 0))
          ~body:(fun () ->
            B.if_ b Opcode.Ge i len
              ~then_:(fun () -> B.seti b stop 1L)
              ~else_:(fun () ->
                let ca = B.loadb b (B.elem1 b pa i) in
                let cb = B.loadb b (B.elem1 b pb i) in
                B.if_ b Opcode.Ne ca cb
                  ~then_:(fun () ->
                    B.mov b ~dst:res ~src:i;
                    B.seti b stop 1L)
                  ~else_:(fun () ->
                    B.assign b i (B.addi b i 1L))
                  ())
              ());
        B.ret b (Some res))
  in
  let _main =
    B.define prog "main" ~params:[] (fun b _ ->
        let pa = B.addr b "bufa" in
        let pb = B.addr b "bufb" in
        let len = B.cint b n in
        let diff = B.call_i b "scan" [ pa; pb; len ] in
        let first = B.call_i b "first_diff" [ pa; pb; len ] in
        B.emit b diff;
        B.emit b first;
        B.halt b)
  in
  prog

let bench =
  {
    Wutil.name = "cmp";
    kind = Wutil.Int_bench;
    description = "byte-buffer comparison with rolling checksums";
    build;
  }
