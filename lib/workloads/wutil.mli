(** Shared helpers for the synthetic benchmark kernels: a deterministic
    PRNG for input generation, data initialisers and builder idioms. *)

open Rc_ir

(** xorshift64* — deterministic across platforms, used to generate every
    workload input. *)
type rng = { mutable s : int64 }

val rng : int64 -> rng
val next : rng -> int64

(** Uniform in [0, bound). *)
val next_int : rng -> int -> int

(** Uniform in (0, 1). *)
val next_float : rng -> float

val words_of_rng : rng -> int -> (rng -> int -> int64) -> int64 array
val random_words : rng -> int -> int -> int64 array
val random_bytes : rng -> int -> string -> string
val random_doubles : rng -> int -> float array

(** Declare a global initialised with 64-bit words. *)
val global_words : Prog.t -> string -> int64 array -> unit

val global_doubles : Prog.t -> string -> float array -> unit
val global_bytes : Prog.t -> string -> string -> unit

(** The kind of register file a benchmark stresses. *)
type kind = Int_bench | Float_bench

type bench = {
  name : string;
  kind : kind;
  description : string;
  build : int -> Prog.t;  (** scale factor (>= 1) *)
}
