(** [grep]: fixed-string search over a text buffer.  The match test is a
    straight-line 8-byte comparison (branch-free, unrollable) guarded by
    a first-character filter, plus newline counting for line numbers. *)

open Rc_isa
open Rc_ir
module B = Builder

let pattern = "foxtrot_"

let build scale =
  let n = 2048 * scale in
  let r = Wutil.rng 424242L in
  let buf = Buffer.create (n + 16) in
  while Buffer.length buf < n do
    match Wutil.next_int r 14 with
    | 0 -> Buffer.add_string buf pattern
    | 1 -> Buffer.add_char buf '\n'
    | 2 -> Buffer.add_string buf "foxtro__"
    | _ ->
        Buffer.add_char buf "abcdefghijklmnop _".[Wutil.next_int r 18]
  done;
  let text = Buffer.sub buf 0 n ^ String.make 16 ' ' in
  let prog = B.program ~entry:"main" in
  Wutil.global_bytes prog "text" text;
  Wutil.global_bytes prog "pat" pattern;
  let _search =
    B.define prog "search" ~params:[ Reg.Int; Reg.Int ] ~ret:Reg.Int
      (fun b params ->
        let text_p, len =
          match params with [ x; y ] -> (x, y) | _ -> assert false
        in
        let pat_p = B.addr b "pat" in
        (* The pattern bytes stay in registers across the scan. *)
        let pat = Array.init 8 (fun k -> B.loadb b ~off:k pat_p) in
        let matches = B.cint b 0 in
        let lines = B.cint b 0 in
        let lastpos = B.cint b 0 in
        let nl = B.cint b 10 in
        B.for_ b ~start:(Op.C 0L) ~stop:(Op.V len) (fun i ->
            let p = B.elem1 b text_p i in
            let c0 = B.loadb b p in
            B.assign b lines (B.add b lines (B.seq b c0 nl));
            let eq = B.seq b c0 pat.(0) in
            let eq = B.and_ b eq (B.seq b (B.loadb b ~off:1 p) pat.(1)) in
            let eq = B.and_ b eq (B.seq b (B.loadb b ~off:2 p) pat.(2)) in
            let eq = B.and_ b eq (B.seq b (B.loadb b ~off:3 p) pat.(3)) in
            let eq = B.and_ b eq (B.seq b (B.loadb b ~off:4 p) pat.(4)) in
            let eq = B.and_ b eq (B.seq b (B.loadb b ~off:5 p) pat.(5)) in
            let eq = B.and_ b eq (B.seq b (B.loadb b ~off:6 p) pat.(6)) in
            let eq = B.and_ b eq (B.seq b (B.loadb b ~off:7 p) pat.(7)) in
            B.assign b matches (B.add b matches eq);
            B.assign b lastpos
              (B.add b (B.mul b lastpos (B.xori b eq 1L)) (B.mul b i eq)));
        B.emit b lines;
        B.emit b lastpos;
        B.ret b (Some matches))
  in
  let _main =
    B.define prog "main" ~params:[] (fun b _ ->
        let text_p = B.addr b "text" in
        let len = B.cint b n in
        let matches = B.call_i b "search" [ text_p; len ] in
        B.emit b matches;
        B.halt b)
  in
  prog

let bench =
  {
    Wutil.name = "grep";
    kind = Wutil.Int_bench;
    description = "fixed-string search with line counting";
    build;
  }
