(** The full compilation pipeline of the experiments:

    {v
    IR --classical/ILP opt--> IR --legalize--> IR --profile (interpreter)
       --priority colouring--> assignment
       --lowering--> machine code (physical form)
       --list scheduling--> machine code (physical form, packed)
       --connect insertion (RC only)--> architectural form
       --assembly--> image --simulation--> cycles
    v} *)

open Rc_isa
open Rc_ir

type options = {
  opt : Rc_opt.Pass.level;
  rc : bool;
  core_int : int;
  core_float : int;
  total_int : int;  (** integer physical file size when [rc] *)
  total_float : int;  (** floating-point physical file size when [rc] *)
  model : Rc_core.Model.t;
  combine : bool;  (** multiple-connect instructions *)
  connect_dispatch : [ `Shared | `Extra of int ] option;
      (** forwarded to {!Rc_machine.Config}; [None] = machine default *)
  issue : int;
  mem_channels : int;
  lat : Latency.t;
  extra_stage : bool;
}

let options ?(opt = Rc_opt.Pass.Ilp Rc_opt.Pass.default_unroll) ?(rc = false)
    ?(core_int = 32) ?(core_float = 32) ?total_int ?total_float
    ?(model = Rc_core.Model.default) ?(combine = true) ?connect_dispatch
    ?(issue = 4) ?mem_channels ?(lat = Latency.default) ?(extra_stage = false)
    () =
  let total_int = match total_int with Some t -> t | None -> max 256 core_int in
  let total_float =
    match total_float with Some t -> t | None -> max 256 core_float
  in
  let mem_channels =
    match mem_channels with
    | Some m -> m
    | None -> Rc_machine.Config.default_mem_channels issue
  in
  {
    opt;
    rc;
    core_int;
    core_float;
    total_int;
    total_float;
    model;
    combine;
    connect_dispatch;
    issue;
    mem_channels;
    lat;
    extra_stage;
  }

let files opts =
  if opts.rc then
    ( Reg.file ~core:opts.core_int ~total:opts.total_int,
      Reg.file ~core:opts.core_float ~total:opts.total_float )
  else (Reg.core_only opts.core_int, Reg.core_only opts.core_float)

type compiled = {
  opts : options;
  mcode : Mcode.t;
  image : Image.t;
  breakdown : Mcode.size_breakdown;
  spills : int;
  connects_inserted : int;
  expected : Rc_interp.Interp.outcome;  (** reference run of the optimised IR *)
}

(** Optimise, legalise and profile a freshly built program.  The result
    can be shared by every register configuration at the same
    optimisation level. *)
let prepare ~opt (prog : Prog.t) =
  Rc_opt.Pass.apply opt prog;
  Rc_codegen.Legalize.run prog;
  let outcome = Rc_interp.Interp.run prog in
  (prog, outcome)

(** Compile a prepared program under [opts]. *)
let compile_prepared opts ((prog : Prog.t), (expected : Rc_interp.Interp.outcome)) =
  let ifile, ffile = files opts in
  let alloc =
    (* A compiler targeting 1-cycle connects avoids leaning on the
       extended section for short-lived values: without zero-cycle
       forwarding every adjacent connect/consumer pair would split
       across cycles. *)
    Rc_regalloc.Alloc.run
      ~aggressive_extended:(opts.lat.Latency.connect = 0)
      ~ifile ~ffile prog expected.Rc_interp.Interp.profile
  in
  let mcode = Rc_codegen.Lower.run prog alloc expected.Rc_interp.Interp.profile in
  let sched_cfg =
    Rc_sched.List_sched.config ~width:opts.issue ~mem_channels:opts.mem_channels
      ~lat:opts.lat ()
  in
  Rc_sched.List_sched.run sched_cfg mcode;
  let connects_inserted =
    if opts.rc then
      Rc_codegen.Rc_lower.run
        (Rc_codegen.Rc_lower.config ~model:opts.model ~combine:opts.combine
           ~ifile ~ffile ())
        mcode
    else 0
  in
  if not (Rc_codegen.Rc_lower.check_arch_form ~ifile ~ffile mcode) then
    invalid_arg "Pipeline: generated code is not in architectural form";
  let image = Image.assemble mcode in
  {
    opts;
    mcode;
    image;
    breakdown = Mcode.size_breakdown mcode;
    spills = Rc_regalloc.Alloc.total_spills alloc;
    connects_inserted;
    expected;
  }

let compile opts (prog : Prog.t) =
  compile_prepared opts (prepare ~opt:opts.opt prog)

(** Simulate compiled code, checking the output stream against the
    reference interpreter run. *)
let simulate ?(verify = true) (c : compiled) =
  let ifile, ffile = files c.opts in
  let mcfg =
    Rc_machine.Config.v ~issue:c.opts.issue ~mem_channels:c.opts.mem_channels
      ~lat:c.opts.lat ~ifile ~ffile ~model:c.opts.model
      ?connect_dispatch:c.opts.connect_dispatch
      ~extra_stage:c.opts.extra_stage ()
  in
  let r = Rc_machine.Machine.run mcfg c.image in
  if verify && r.Rc_machine.Machine.output <> c.expected.Rc_interp.Interp.output then
    invalid_arg "Pipeline.simulate: simulated output differs from reference";
  r

(** Convenience: full compile-and-run. *)
let run opts prog = simulate (compile opts prog)
