(** The full compilation pipeline of the experiments:

    {v
    IR --classical/ILP opt--> IR --legalize--> IR --profile (interpreter)
       --priority colouring--> assignment
       --lowering--> machine code (physical form)
       --list scheduling--> machine code (physical form, packed)
       --connect insertion (RC only)--> architectural form
       --assembly--> image --simulation--> cycles
    v}

    Every stage is timed and its representation-size delta recorded
    (see {!pass_metric}); the per-pass metrics ride along in
    {!compiled} so regressions in any stage are visible without
    re-instrumenting callers. *)

open Rc_isa
open Rc_ir

type options = {
  opt : Rc_opt.Pass.level;
  rc : bool;
  core_int : int;
  core_float : int;
  total_int : int;  (** integer physical file size when [rc] *)
  total_float : int;  (** floating-point physical file size when [rc] *)
  model : Rc_core.Model.t;
  combine : bool;  (** multiple-connect instructions *)
  connect_dispatch : [ `Shared | `Extra of int ] option;
      (** forwarded to {!Rc_machine.Config}; [None] = machine default *)
  issue : int;
  mem_channels : int;
  lat : Latency.t;
  extra_stage : bool;
}

let options ?(opt = Rc_opt.Pass.Ilp Rc_opt.Pass.default_unroll) ?(rc = false)
    ?(core_int = 32) ?(core_float = 32) ?total_int ?total_float
    ?(model = Rc_core.Model.default) ?(combine = true) ?connect_dispatch
    ?(issue = 4) ?mem_channels ?(lat = Latency.default) ?(extra_stage = false)
    () =
  let total_int = match total_int with Some t -> t | None -> max 256 core_int in
  let total_float =
    match total_float with Some t -> t | None -> max 256 core_float
  in
  let mem_channels =
    match mem_channels with
    | Some m -> m
    | None -> Rc_machine.Config.default_mem_channels issue
  in
  {
    opt;
    rc;
    core_int;
    core_float;
    total_int;
    total_float;
    model;
    combine;
    connect_dispatch;
    issue;
    mem_channels;
    lat;
    extra_stage;
  }

let files opts =
  if opts.rc then
    ( Reg.file ~core:opts.core_int ~total:opts.total_int,
      Reg.file ~core:opts.core_float ~total:opts.total_float )
  else (Reg.core_only opts.core_int, Reg.core_only opts.core_float)

(* --- per-pass metrics ---------------------------------------------------- *)

type pass_metric = {
  p_name : string;
      (** "classical-opt" / "ilp-opt", "legalize", "profile", "regalloc",
          "lower", "schedule", "rc-lower", "assemble" *)
  p_start_s : float;  (** epoch seconds when the stage started *)
  p_wall_s : float;  (** wall time of the stage *)
  p_size_in : int;  (** representation size (ops / instructions) before *)
  p_size_out : int;  (** representation size after *)
  p_spills : int;  (** spilled vregs ("regalloc" only, else 0) *)
  p_connects : int;  (** connects inserted ("rc-lower" only, else 0) *)
}

(** Runs one stage, timing it and recording the size transition
    [size_in -> size f's result].  [size] is evaluated after [f]. *)
let staged acc ~name ~size_in ?(spills = fun _ -> 0)
    ?(connects = fun _ -> 0) ~size f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  let t1 = Unix.gettimeofday () in
  acc :=
    {
      p_name = name;
      p_start_s = t0;
      p_wall_s = t1 -. t0;
      p_size_in = size_in;
      p_size_out = size v;
      p_spills = spills v;
      p_connects = connects v;
    }
    :: !acc;
  v

type prepared = {
  prog : Prog.t;
  outcome : Rc_interp.Interp.outcome;  (** reference run of the optimised IR *)
  prep_passes : pass_metric list;  (** opt, legalize, profile *)
}

(** What a stage just produced, handed to the [on_stage] hook so an
    oracle can re-check semantics after every pass.  The values are the
    pipeline's own working state, not copies: hooks must not mutate
    them. *)
type stage_view =
  | Ir of Prog.t
  | Machine_code of Mcode.t
  | Img of Image.t

type compiled = {
  opts : options;
  mcode : Mcode.t;
  image : Image.t;
  breakdown : Mcode.size_breakdown;
  spills : int;
  connects_inserted : int;
  expected : Rc_interp.Interp.outcome;  (** reference run of the optimised IR *)
  passes : pass_metric list;
      (** every stage in pipeline order, preparation included *)
}

(** Optimise, legalise and profile a freshly built program.  The result
    can be shared by every register configuration at the same
    optimisation level.  [on_stage] (default: nothing) is called with
    the stage's name and output after each pass. *)
let prepare ?(on_stage = fun _ _ -> ()) ~opt (prog : Prog.t) =
  let acc = ref [] in
  let opt_name =
    match opt with
    | Rc_opt.Pass.Classical -> "classical-opt"
    | Rc_opt.Pass.Ilp _ -> "ilp-opt"
  in
  let size0 = Prog.op_count prog in
  staged acc ~name:opt_name ~size_in:size0
    ~size:(fun () -> Prog.op_count prog)
    (fun () -> Rc_opt.Pass.apply opt prog);
  on_stage opt_name (Ir prog);
  let size1 = Prog.op_count prog in
  staged acc ~name:"legalize" ~size_in:size1
    ~size:(fun () -> Prog.op_count prog)
    (fun () -> Rc_codegen.Legalize.run prog);
  on_stage "legalize" (Ir prog);
  let size2 = Prog.op_count prog in
  let outcome =
    staged acc ~name:"profile" ~size_in:size2
      ~size:(fun _ -> size2)
      (fun () -> Rc_interp.Interp.run prog)
  in
  { prog; outcome; prep_passes = List.rev !acc }

type allocated = {
  a_opts : options;  (** the options [allocate] ran under *)
  a_mcode : Mcode.t;
      (** lowered, {e unscheduled} machine code — a template;
          {!compile_allocated} works on a {!Mcode.copy} *)
  a_spills : int;
  a_expected : Rc_interp.Interp.outcome;
  a_passes : pass_metric list;  (** prep passes, regalloc, lower *)
}

(** The slice of [options] that register allocation and lowering depend
    on.  The timing knobs — issue rate, memory channels, load latency,
    extra stage, connect dispatch — and the connect-insertion knobs
    (model, combine) do {e not} appear: an {!allocate} result can be
    shared across all of them.  Connect latency appears only through
    the allocator's [aggressive_extended] policy switch. *)
let alloc_key o =
  Fmt.str "%b/%d.%d.%d.%d/a=%b" o.rc o.core_int o.core_float o.total_int
    o.total_float
    (o.lat.Latency.connect = 0)

(** Register-allocate and lower a prepared program: the slow, timing-
    independent front half of compilation, shareable (keyed by
    {!alloc_key}) across every timing configuration. *)
let allocate ?(on_stage = fun _ _ -> ()) opts
    { prog; outcome = expected; prep_passes } =
  let acc = ref [] in
  let ifile, ffile = files opts in
  let ir_size = Prog.op_count prog in
  let alloc =
    (* A compiler targeting 1-cycle connects avoids leaning on the
       extended section for short-lived values: without zero-cycle
       forwarding every adjacent connect/consumer pair would split
       across cycles. *)
    staged acc ~name:"regalloc" ~size_in:ir_size
      ~size:(fun _ -> ir_size)
      ~spills:Rc_regalloc.Alloc.total_spills
      (fun () ->
        Rc_regalloc.Alloc.run
          ~aggressive_extended:(opts.lat.Latency.connect = 0)
          ~ifile ~ffile prog expected.Rc_interp.Interp.profile)
  in
  let mcode =
    staged acc ~name:"lower" ~size_in:ir_size ~size:Mcode.insn_count
      (fun () ->
        Rc_codegen.Lower.run prog alloc expected.Rc_interp.Interp.profile)
  in
  on_stage "lower" (Machine_code mcode);
  {
    a_opts = opts;
    a_mcode = mcode;
    a_spills = Rc_regalloc.Alloc.total_spills alloc;
    a_expected = expected;
    a_passes = prep_passes @ List.rev !acc;
  }

(** Schedule, connect-lower and assemble an allocation under [opts] —
    the timing-dependent back half.  [opts] may differ from the
    allocation's in any knob outside {!alloc_key}; the shared template
    is copied, never mutated. *)
let compile_allocated ?(on_stage = fun _ _ -> ()) opts
    { a_opts; a_mcode; a_spills; a_expected = expected; a_passes } =
  if alloc_key opts <> alloc_key a_opts then
    invalid_arg "Pipeline.compile_allocated: allocation-relevant knobs differ";
  let acc = ref [] in
  let ifile, ffile = files opts in
  let mcode = Mcode.copy a_mcode in
  let mc_size = Mcode.insn_count mcode in
  staged acc ~name:"schedule" ~size_in:mc_size
    ~size:(fun () -> Mcode.insn_count mcode)
    (fun () ->
      let sched_cfg =
        Rc_sched.List_sched.config ~width:opts.issue
          ~mem_channels:opts.mem_channels ~lat:opts.lat ()
      in
      Rc_sched.List_sched.run sched_cfg mcode);
  on_stage "schedule" (Machine_code mcode);
  let connects_inserted =
    staged acc ~name:"rc-lower" ~size_in:(Mcode.insn_count mcode)
      ~size:(fun _ -> Mcode.insn_count mcode)
      ~connects:(fun n -> n)
      (fun () ->
        if opts.rc then
          Rc_codegen.Rc_lower.run
            (Rc_codegen.Rc_lower.config ~model:opts.model ~combine:opts.combine
               ~ifile ~ffile ())
            mcode
        else 0)
  in
  if not (Rc_codegen.Rc_lower.check_arch_form ~ifile ~ffile mcode) then
    invalid_arg "Pipeline: generated code is not in architectural form";
  on_stage "rc-lower" (Machine_code mcode);
  let image =
    staged acc ~name:"assemble" ~size_in:(Mcode.insn_count mcode)
      ~size:(fun (i : Image.t) -> Array.length i.Image.code)
      (fun () -> Image.assemble mcode)
  in
  on_stage "assemble" (Img image);
  {
    opts;
    mcode;
    image;
    breakdown = Mcode.size_breakdown mcode;
    spills = a_spills;
    connects_inserted;
    expected;
    passes = a_passes @ List.rev !acc;
  }

(** Compile a prepared program under [opts]. *)
let compile_prepared ?(on_stage = fun _ _ -> ()) opts prepared =
  compile_allocated ~on_stage opts (allocate ~on_stage opts prepared)

let compile opts (prog : Prog.t) =
  compile_prepared opts (prepare ~opt:opts.opt prog)

(** The machine configuration [opts] describes — the one {!simulate}
    and the trace-replay engine run under. *)
let machine_config (opts : options) =
  let ifile, ffile = files opts in
  Rc_machine.Config.v ~issue:opts.issue ~mem_channels:opts.mem_channels
    ~lat:opts.lat ~ifile ~ffile ~model:opts.model
    ?connect_dispatch:opts.connect_dispatch ~extra_stage:opts.extra_stage ()

let check_output name (r : Rc_machine.Machine.result) (c : compiled) =
  if r.Rc_machine.Machine.output <> c.expected.Rc_interp.Interp.output then
    invalid_arg (name ^ ": simulated output differs from reference")

(** Simulate compiled code, checking the output stream against the
    reference interpreter run. *)
let simulate ?(verify = true) ?observer (c : compiled) =
  let m = Rc_machine.Machine.create (machine_config c.opts) c.image in
  (match observer with
  | None -> ()
  | Some _ -> Rc_machine.Machine.set_observer m observer);
  let r = Rc_machine.Machine.run_machine m in
  if verify then check_output "Pipeline.simulate" r c;
  r

(** {!simulate} with a trace recorder attached: the execution-driven
    result plus the dynamic trace, when the run was replayable (see
    {!Rc_machine.Trace_replay}). *)
let simulate_recorded ?(verify = true) (c : compiled) =
  let r, tr = Rc_machine.Trace_replay.record (machine_config c.opts) c.image in
  if verify then check_output "Pipeline.simulate_recorded" r c;
  (r, tr)

(** Re-time a recorded trace under this compilation's configuration
    instead of executing; byte-identical to {!simulate} when the trace
    was recorded from an image with the same fingerprint under matching
    semantics. *)
let simulate_replayed ?(verify = true) ?memo ?stats (c : compiled) trace =
  let r =
    Rc_machine.Trace_replay.replay ?memo ?stats (machine_config c.opts)
      c.image trace
  in
  if verify then check_output "Pipeline.simulate_replayed" r c;
  r

(** Re-time one trace under a whole batch of compilations in a single
    pass over the trace ({!Rc_machine.Trace_replay.replay_batch}).  All
    compilations must share the image fingerprint and semantic knobs
    the trace was recorded under; their timing knobs are free. *)
let simulate_replay_batch ?(verify = true) ?memo ?stats (cs : compiled list)
    trace =
  match cs with
  | [] -> []
  | c0 :: _ ->
      let cfgs =
        Array.of_list (List.map (fun c -> machine_config c.opts) cs)
      in
      let rs =
        Rc_machine.Trace_replay.replay_batch ?memo ?stats cfgs c0.image trace
      in
      List.mapi
        (fun i c ->
          if verify then check_output "Pipeline.simulate_replay_batch" rs.(i) c;
          rs.(i))
        cs

(** Convenience: full compile-and-run. *)
let run opts prog = simulate (compile opts prog)
