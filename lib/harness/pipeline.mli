(** The full compilation pipeline of the experiments:

    {v
    IR --classical/ILP opt--> IR --legalize--> IR --profile (interpreter)
       --priority colouring--> assignment
       --lowering--> machine code (physical form)
       --list scheduling--> machine code (physical form, packed)
       --connect insertion (RC only)--> architectural form
       --assembly--> image --simulation--> cycles
    v} *)

open Rc_isa

type options = {
  opt : Rc_opt.Pass.level;
  rc : bool;
  core_int : int;
  core_float : int;
  total_int : int;  (** integer physical file size when [rc] *)
  total_float : int;  (** floating-point physical file size when [rc] *)
  model : Rc_core.Model.t;
  combine : bool;  (** multiple-connect instructions *)
  connect_dispatch : [ `Shared | `Extra of int ] option;
      (** forwarded to {!Rc_machine.Config}; [None] = machine default *)
  issue : int;
  mem_channels : int;
  lat : Latency.t;
  extra_stage : bool;
}

(** Defaults: ILP optimisation (unroll 4), no RC, 32/32 core registers,
    256-register physical files, model 3, combined connects, 4-issue,
    2-cycle loads, zero-cycle connects. *)
val options :
  ?opt:Rc_opt.Pass.level ->
  ?rc:bool ->
  ?core_int:int ->
  ?core_float:int ->
  ?total_int:int ->
  ?total_float:int ->
  ?model:Rc_core.Model.t ->
  ?combine:bool ->
  ?connect_dispatch:[ `Shared | `Extra of int ] ->
  ?issue:int ->
  ?mem_channels:int ->
  ?lat:Latency.t ->
  ?extra_stage:bool ->
  unit ->
  options

(** The register files a configuration implies (core-only without
    RC). *)
val files : options -> Reg.file * Reg.file

(** Telemetry for one pipeline stage: wall time, representation-size
    delta, and the stage-specific counters (spills for "regalloc",
    connects inserted for "rc-lower"). *)
type pass_metric = {
  p_name : string;
      (** "classical-opt" / "ilp-opt", "legalize", "profile", "regalloc",
          "lower", "schedule", "rc-lower", "assemble" *)
  p_start_s : float;  (** epoch seconds when the stage started *)
  p_wall_s : float;  (** wall time of the stage *)
  p_size_in : int;  (** representation size (ops / instructions) before *)
  p_size_out : int;  (** representation size after *)
  p_spills : int;  (** spilled vregs ("regalloc" only, else 0) *)
  p_connects : int;  (** connects inserted ("rc-lower" only, else 0) *)
}

type prepared = {
  prog : Rc_ir.Prog.t;
  outcome : Rc_interp.Interp.outcome;  (** reference run of the optimised IR *)
  prep_passes : pass_metric list;  (** opt, legalize, profile *)
}

(** What a stage just produced, handed to the [on_stage] hook so an
    oracle can re-check semantics after every pass.  The values are the
    pipeline's own working state, not copies: hooks must not mutate
    them. *)
type stage_view =
  | Ir of Rc_ir.Prog.t
  | Machine_code of Mcode.t
  | Img of Image.t

type compiled = {
  opts : options;
  mcode : Mcode.t;
  image : Image.t;
  breakdown : Mcode.size_breakdown;
  spills : int;
  connects_inserted : int;
  expected : Rc_interp.Interp.outcome;
      (** reference run of the optimised IR *)
  passes : pass_metric list;
      (** every stage in pipeline order, preparation included *)
}

(** Optimise, legalise and profile a freshly built program.  The result
    can be shared by every register configuration at the same
    optimisation level.  [on_stage] (default: nothing) is called with
    the stage's name and output after each transforming pass —
    "classical-opt"/"ilp-opt" and "legalize" here; "lower", "schedule",
    "rc-lower" and "assemble" in {!compile_prepared}. *)
val prepare :
  ?on_stage:(string -> stage_view -> unit) ->
  opt:Rc_opt.Pass.level ->
  Rc_ir.Prog.t ->
  prepared

(** A register-allocated, lowered — but unscheduled — program: the
    slow, timing-independent front half of compilation, shareable
    across every configuration with the same {!alloc_key}. *)
type allocated = {
  a_opts : options;  (** the options {!allocate} ran under *)
  a_mcode : Mcode.t;
      (** lowered, {e unscheduled} machine code — a template;
          {!compile_allocated} works on a {!Mcode.copy} *)
  a_spills : int;
  a_expected : Rc_interp.Interp.outcome;
  a_passes : pass_metric list;  (** prep passes, regalloc, lower *)
}

(** The slice of [options] register allocation and lowering depend on:
    register files and the allocator's connect-latency policy.  Equal
    keys (for the same prepared program) mean interchangeable
    {!allocate} results; issue rate, memory channels, load latency,
    model, combine, extra stage and connect dispatch do not appear. *)
val alloc_key : options -> string

(** Register-allocate and lower a prepared program (the "regalloc" and
    "lower" stages). *)
val allocate :
  ?on_stage:(string -> stage_view -> unit) -> options -> prepared -> allocated

(** Schedule, connect-lower and assemble an allocation under [opts] —
    the timing-dependent back half.  [opts] may differ from the
    allocation's in any knob outside {!alloc_key}; the shared template
    is copied, never mutated.
    @raise Invalid_argument if the allocation-relevant knobs differ or
    the generated code fails the architectural-form check. *)
val compile_allocated :
  ?on_stage:(string -> stage_view -> unit) -> options -> allocated -> compiled

(** Compile a prepared program under [opts] ({!allocate} followed by
    {!compile_allocated}).
    @raise Invalid_argument if the generated code fails the
    architectural-form check. *)
val compile_prepared :
  ?on_stage:(string -> stage_view -> unit) -> options -> prepared -> compiled

val compile : options -> Rc_ir.Prog.t -> compiled

(** The machine configuration [opts] describes — the one {!simulate}
    and the trace-replay engine run under. *)
val machine_config : options -> Rc_machine.Config.t

(** Simulate compiled code; when [verify] (default), check the output
    stream against the reference interpreter run.  [observer] is
    attached to the machine for per-cycle telemetry (see
    {!Rc_machine.Machine.cycle_sample}).
    @raise Invalid_argument on a verification mismatch. *)
val simulate :
  ?verify:bool ->
  ?observer:(Rc_machine.Machine.cycle_sample -> unit) ->
  compiled ->
  Rc_machine.Machine.result

(** {!simulate} with a trace recorder attached: the execution-driven
    result plus the dynamic trace, when the run was replayable (see
    {!Rc_machine.Trace_replay}). *)
val simulate_recorded :
  ?verify:bool ->
  compiled ->
  Rc_machine.Machine.result * Rc_machine.Dtrace.t option

(** Re-time a recorded trace under this compilation's configuration
    instead of executing; byte-identical to {!simulate} when the trace
    was recorded from an image with the same fingerprint under matching
    semantics (see DESIGN.md §14).
    @raise Invalid_argument on a verification mismatch. *)
val simulate_replayed :
  ?verify:bool ->
  ?memo:bool ->
  ?stats:Rc_machine.Trace_replay.memo_stats ->
  compiled ->
  Rc_machine.Dtrace.t ->
  Rc_machine.Machine.result

(** Re-time one trace under a whole batch of compilations in a single
    pass over the trace ({!Rc_machine.Trace_replay.replay_batch}),
    returning one result per compilation in order.  All compilations
    must share the image fingerprint and semantic knobs the trace was
    recorded under; their timing knobs are free.
    @raise Invalid_argument on a verification mismatch. *)
val simulate_replay_batch :
  ?verify:bool ->
  ?memo:bool ->
  ?stats:Rc_machine.Trace_replay.memo_stats ->
  compiled list ->
  Rc_machine.Dtrace.t ->
  Rc_machine.Machine.result list

(** [compile] followed by [simulate]. *)
val run : options -> Rc_ir.Prog.t -> Rc_machine.Machine.result
