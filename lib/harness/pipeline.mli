(** The full compilation pipeline of the experiments:

    {v
    IR --classical/ILP opt--> IR --legalize--> IR --profile (interpreter)
       --priority colouring--> assignment
       --lowering--> machine code (physical form)
       --list scheduling--> machine code (physical form, packed)
       --connect insertion (RC only)--> architectural form
       --assembly--> image --simulation--> cycles
    v} *)

open Rc_isa

type options = {
  opt : Rc_opt.Pass.level;
  rc : bool;
  core_int : int;
  core_float : int;
  total_int : int;  (** integer physical file size when [rc] *)
  total_float : int;  (** floating-point physical file size when [rc] *)
  model : Rc_core.Model.t;
  combine : bool;  (** multiple-connect instructions *)
  connect_dispatch : [ `Shared | `Extra of int ] option;
      (** forwarded to {!Rc_machine.Config}; [None] = machine default *)
  issue : int;
  mem_channels : int;
  lat : Latency.t;
  extra_stage : bool;
}

(** Defaults: ILP optimisation (unroll 4), no RC, 32/32 core registers,
    256-register physical files, model 3, combined connects, 4-issue,
    2-cycle loads, zero-cycle connects. *)
val options :
  ?opt:Rc_opt.Pass.level ->
  ?rc:bool ->
  ?core_int:int ->
  ?core_float:int ->
  ?total_int:int ->
  ?total_float:int ->
  ?model:Rc_core.Model.t ->
  ?combine:bool ->
  ?connect_dispatch:[ `Shared | `Extra of int ] ->
  ?issue:int ->
  ?mem_channels:int ->
  ?lat:Latency.t ->
  ?extra_stage:bool ->
  unit ->
  options

(** The register files a configuration implies (core-only without
    RC). *)
val files : options -> Reg.file * Reg.file

type compiled = {
  opts : options;
  mcode : Mcode.t;
  image : Image.t;
  breakdown : Mcode.size_breakdown;
  spills : int;
  connects_inserted : int;
  expected : Rc_interp.Interp.outcome;
      (** reference run of the optimised IR *)
}

(** Optimise, legalise and profile a freshly built program.  The result
    can be shared by every register configuration at the same
    optimisation level. *)
val prepare :
  opt:Rc_opt.Pass.level ->
  Rc_ir.Prog.t ->
  Rc_ir.Prog.t * Rc_interp.Interp.outcome

(** Compile a prepared program under [opts].
    @raise Invalid_argument if the generated code fails the
    architectural-form check. *)
val compile_prepared :
  options -> Rc_ir.Prog.t * Rc_interp.Interp.outcome -> compiled

val compile : options -> Rc_ir.Prog.t -> compiled

(** Simulate compiled code; when [verify] (default), check the output
    stream against the reference interpreter run.
    @raise Invalid_argument on a verification mismatch. *)
val simulate : ?verify:bool -> compiled -> Rc_machine.Machine.result

(** [compile] followed by [simulate]. *)
val run : options -> Rc_ir.Prog.t -> Rc_machine.Machine.result
