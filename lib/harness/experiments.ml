(** Regeneration of every table and figure of the paper's evaluation
    (section 5), over the twelve benchmark kernels.

    Speedups are computed exactly as in the paper: the base configuration
    is a single-issue processor with an unlimited number of registers
    using conventional compiler scalar optimisations (section 5.3).
    Integer benchmarks vary the integer register file with a fixed
    floating-point file; floating-point benchmarks vary the
    floating-point file with a fixed 64-entry integer file (section
    5.2).  The paper counts FP registers for double-precision variables
    (two registers per double); our simulator stores one double per
    register, so FP sweeps are labelled with the paper's register counts
    while the simulator gets half as many (DESIGN.md section 10). *)

open Rc_workloads

(* --- memoising context ------------------------------------------------- *)

(** Everything the harness keeps about one simulated cell: the machine
    result (with its slot-level stall attribution) plus the compile-side
    telemetry. *)
type cell = {
  c_result : Rc_machine.Machine.result;
  c_breakdown : Rc_isa.Mcode.size_breakdown;
  c_spills : int;
  c_passes : Pipeline.pass_metric list;
}

(** How cells are timed.  [Execute] always runs the execution-driven
    simulator.  [Replay] records a dynamic trace on the first sight of
    each compiled image and re-times every later sighting by trace
    replay.  [Auto] (the default) is memory-thriftier: it records only
    on an image's {e second} sighting, so images simulated once — the
    common case for a single figure — never hold a trace. *)
type engine = Execute | Replay | Auto

let engine_name = function
  | Execute -> "execute"
  | Replay -> "replay"
  | Auto -> "auto"

let engine_of_string = function
  | "execute" -> Some Execute
  | "replay" -> Some Replay
  | "auto" -> Some Auto
  | _ -> None

(** Trace-cache counters: every simulated cell increments exactly one
    of [hits] (timed by replaying a cached trace), [misses]
    (replay-eligible but executed) or [unsafe] (not replay-safe, forced
    execution); [recorded]/[bytes] count the resident traces.  Under
    [Execute] everything lands in [misses]. *)
type engine_stats = {
  hits : int;
  misses : int;
  recorded : int;
  unsafe : int;
  bytes : int;
  store_hits : int;  (** subset of [hits] whose trace came from the store *)
  (* superblock timing memo (Trace_replay.memo_stats, DESIGN.md §18),
     summed over every replay this context ran *)
  seg_hits : int;
  seg_misses : int;
  seg_fallbacks : int;
  memo_bytes : int;  (** cumulative approximate memo-table footprint *)
}

type trace_slot = Seen_once | Recorded of Rc_machine.Dtrace.t

(** Optional second cache level behind the in-memory trace table: an
    on-disk store (lib/serve/store.ml, or anything else) exposed as two
    closures so the harness stays ignorant of file formats.  [probe] is
    consulted on an in-memory miss {e before} deciding to execute or
    record; [publish] is offered every freshly recorded trace.  Both
    run {e outside} [traces_mu] — they do disk IO. *)
type store_hooks = {
  probe : string -> Rc_machine.Dtrace.t option;
  publish : string -> Rc_machine.Dtrace.t -> unit;
}

type ctx = {
  scale : int;
  engine : engine;
  batch : bool;
      (** pre-group replay-safe cells sharing a trace key and re-time
          each group in one {!Rc_machine.Trace_replay.replay_batch}
          pass before the table fan-out (the default); [false] forces
          the per-cell engine path — the [--per-cell] debugging and
          equivalence-smoke switch *)
  pool : Rc_par.Pool.t;
  (* Domain-safe single-flight memo tables: any worker may ask for any
     cell, but each program is compiled and each configuration simulated
     exactly once. *)
  prepared : (string * string, Pipeline.prepared) Rc_par.Memo.t;
  allocs : (string, Pipeline.allocated) Rc_par.Memo.t;
  runs : (string, cell) Rc_par.Memo.t;
  base_cycles : (string, float) Rc_par.Memo.t;
  (* The trace cache is mutex-protected but deliberately not
     single-flight: two workers racing on one fingerprint at worst both
     execute, and replayed results are exact, so table contents never
     depend on the race (only the hit/miss split does). *)
  traces : (string, trace_slot) Hashtbl.t;
  traces_mu : Mutex.t;
  mutable store : store_hooks option;
  timing_memo : bool;
      (** superblock timing memo inside every replay (default true);
          the [--no-timing-memo] escape hatch clears it *)
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_recorded : int;
  mutable s_unsafe : int;
  mutable s_bytes : int;
  mutable s_store_hits : int;
  mutable s_seg_hits : int;
  mutable s_seg_misses : int;
  mutable s_seg_fallbacks : int;
  mutable s_memo_bytes : int;
}

let create ?(scale = 1) ?(jobs = 1) ?(engine = Auto) ?(batch = true)
    ?(timing_memo = true) () =
  {
    scale;
    engine;
    batch;
    timing_memo;
    pool = Rc_par.Pool.create ~jobs;
    prepared = Rc_par.Memo.create 32;
    allocs = Rc_par.Memo.create 128;
    runs = Rc_par.Memo.create 256;
    base_cycles = Rc_par.Memo.create 16;
    traces = Hashtbl.create 256;
    traces_mu = Mutex.create ();
    store = None;
    s_hits = 0;
    s_misses = 0;
    s_recorded = 0;
    s_unsafe = 0;
    s_bytes = 0;
    s_store_hits = 0;
    s_seg_hits = 0;
    s_seg_misses = 0;
    s_seg_fallbacks = 0;
    s_memo_bytes = 0;
  }

let jobs ctx = Rc_par.Pool.jobs ctx.pool
let engine ctx = ctx.engine
let scale ctx = ctx.scale
let pool ctx = ctx.pool

let engine_stats ctx =
  Mutex.protect ctx.traces_mu (fun () ->
      {
        hits = ctx.s_hits;
        misses = ctx.s_misses;
        recorded = ctx.s_recorded;
        unsafe = ctx.s_unsafe;
        bytes = ctx.s_bytes;
        store_hits = ctx.s_store_hits;
        seg_hits = ctx.s_seg_hits;
        seg_misses = ctx.s_seg_misses;
        seg_fallbacks = ctx.s_seg_fallbacks;
        memo_bytes = ctx.s_memo_bytes;
      })

(* Bridge the trace-cache counters into a metrics registry (the serve
   Prometheus exposition).  Hits/misses/unsafe/recorded are monotone
   totals accumulated here, so they export as counters; resident bytes
   is a level, a gauge. *)
let export_metrics ctx reg =
  let s = engine_stats ctx in
  let c name help v =
    Rc_obs.Metrics.set_counter reg ~help name (float_of_int v)
  in
  c "rcc_trace_cache_hits_total" "Cells timed by replaying a cached trace"
    s.hits;
  c "rcc_trace_cache_misses_total" "Replay-eligible cells that executed"
    s.misses;
  c "rcc_trace_cache_recorded_total" "Traces recorded into the cache"
    s.recorded;
  c "rcc_trace_cache_unsafe_total" "Cells not replay-safe, forced execution"
    s.unsafe;
  c "rcc_trace_cache_store_hits_total"
    "Trace-cache hits whose trace came from the on-disk store" s.store_hits;
  c "rcc_timing_memo_hits_total"
    "Superblock visits served by the replay timing memo" s.seg_hits;
  c "rcc_timing_memo_misses_total"
    "Superblock visits replayed per-entry and recorded into the memo"
    s.seg_misses;
  c "rcc_timing_memo_fallbacks_total"
    "Superblock visits ineligible for the memo (halt, fuel, overflow)"
    s.seg_fallbacks;
  c "rcc_timing_memo_bytes_total" "Cumulative approximate memo-table bytes"
    s.memo_bytes;
  Rc_obs.Metrics.set reg ~help:"Resident compacted trace bytes"
    "rcc_trace_cache_bytes" (float_of_int s.bytes)

let shutdown ctx = Rc_par.Pool.shutdown ctx.pool
let set_store ctx ~probe ~publish = ctx.store <- Some { probe; publish }

(* Probe the attached store for [key] — called on an in-memory miss,
   outside [traces_mu] (it reads a file).  A hit is installed in the
   memory table (unless a racing worker already recorded the key) so
   later sightings hit memory, and counts toward resident bytes like
   any other cached trace. *)
let store_probe ctx key =
  match ctx.store with
  | None -> None
  | Some s -> (
      match s.probe key with
      | None -> None
      | Some tr ->
          Mutex.protect ctx.traces_mu (fun () ->
              ctx.s_store_hits <- ctx.s_store_hits + 1;
              match Hashtbl.find_opt ctx.traces key with
              | Some (Recorded _) -> ()
              | _ ->
                  Hashtbl.replace ctx.traces key (Recorded tr);
                  ctx.s_bytes <- ctx.s_bytes + Rc_machine.Dtrace.bytes tr);
          Some tr)

let store_publish ctx key tr =
  match ctx.store with None -> () | Some s -> s.publish key tr

let level_key = function
  | Rc_opt.Pass.Classical -> "classical"
  | Rc_opt.Pass.Ilp f -> "ilp" ^ string_of_int f

let prepared ctx (b : Wutil.bench) level =
  let key = (b.Wutil.name, level_key level) in
  Rc_par.Memo.find_or_compute ctx.prepared key (fun () ->
      Pipeline.prepare ~opt:level (b.Wutil.build ctx.scale))

let opts_key (o : Pipeline.options) =
  Fmt.str "%s/rc=%b/%d.%d.%d.%d/%a/c=%b/i=%d/m=%d/l=%d.%d/x=%b"
    (level_key o.Pipeline.opt) o.Pipeline.rc o.Pipeline.core_int
    o.Pipeline.core_float o.Pipeline.total_int o.Pipeline.total_float
    Rc_core.Model.pp o.Pipeline.model o.Pipeline.combine o.Pipeline.issue
    o.Pipeline.mem_channels o.Pipeline.lat.Rc_isa.Latency.load
    o.Pipeline.lat.Rc_isa.Latency.connect o.Pipeline.extra_stage

(** Register allocation and lowering shared (memoised) across every
    configuration with the same {!Pipeline.alloc_key} — the timing axes
    of the figure sweeps (issue rate, memory channels, load latency,
    model, combine, extra stage) re-use one allocation. *)
let allocated ctx (b : Wutil.bench) (opts : Pipeline.options) =
  let key =
    Fmt.str "%s#%s#%s" b.Wutil.name
      (level_key opts.Pipeline.opt)
      (Pipeline.alloc_key opts)
  in
  Rc_par.Memo.find_or_compute ctx.allocs key (fun () ->
      Pipeline.allocate opts (prepared ctx b opts.Pipeline.opt))

(* The knobs that determine the dynamic instruction stream beyond the
   image bytes: register resolution (reset model, file shapes).  Part
   of the trace-cache key; everything else in [opts] is free to vary
   between recording and replay. *)
let semantic_key (o : Pipeline.options) =
  Fmt.str "%a/%b/%d.%d.%d.%d" Rc_core.Model.pp o.Pipeline.model o.Pipeline.rc
    o.Pipeline.core_int o.Pipeline.core_float o.Pipeline.total_int
    o.Pipeline.total_float

(* Fold one replay call's memo counters into the context. *)
let fold_memo ctx (m : Rc_machine.Trace_replay.memo_stats) =
  Mutex.protect ctx.traces_mu (fun () ->
      ctx.s_seg_hits <- ctx.s_seg_hits + m.Rc_machine.Trace_replay.m_hits;
      ctx.s_seg_misses <- ctx.s_seg_misses + m.Rc_machine.Trace_replay.m_misses;
      ctx.s_seg_fallbacks <-
        ctx.s_seg_fallbacks + m.Rc_machine.Trace_replay.m_fallbacks;
      ctx.s_memo_bytes <- ctx.s_memo_bytes + m.Rc_machine.Trace_replay.m_bytes)

(* Every replay the harness runs goes through these two wrappers, so
   the timing-memo switch and counters apply uniformly. *)
let replay_cell ctx c tr =
  let ms = Rc_machine.Trace_replay.memo_stats () in
  let r = Pipeline.simulate_replayed ~memo:ctx.timing_memo ~stats:ms c tr in
  fold_memo ctx ms;
  r

let replay_batch_cells ctx cs tr =
  let ms = Rc_machine.Trace_replay.memo_stats () in
  let rs = Pipeline.simulate_replay_batch ~memo:ctx.timing_memo ~stats:ms cs tr in
  fold_memo ctx ms;
  rs

(** Time one compiled cell under the context's engine: replay a cached
    trace when the image was seen before, otherwise execute (recording
    per the engine's policy).  Also reports which engine produced the
    result — ["execute"] or ["replay"] — for callers (the server's
    [/run] endpoint) that surface it. *)
let simulate_engine ctx (c : Pipeline.compiled) =
  let bump_miss () =
    Mutex.protect ctx.traces_mu (fun () -> ctx.s_misses <- ctx.s_misses + 1)
  in
  match ctx.engine with
  | Execute ->
      bump_miss ();
      (Pipeline.simulate c, "execute")
  | Replay | Auto ->
      if
        not
          (Rc_machine.Trace_replay.replay_safe
             (Pipeline.machine_config c.Pipeline.opts))
      then begin
        Mutex.protect ctx.traces_mu (fun () ->
            ctx.s_unsafe <- ctx.s_unsafe + 1);
        (Pipeline.simulate c, "execute")
      end
      else begin
        let key =
          Rc_isa.Image.fingerprint c.Pipeline.image
          ^ "#"
          ^ semantic_key c.Pipeline.opts
        in
        let mem =
          Mutex.protect ctx.traces_mu (fun () ->
              match Hashtbl.find_opt ctx.traces key with
              | Some (Recorded tr) ->
                  ctx.s_hits <- ctx.s_hits + 1;
                  `Hit tr
              | Some Seen_once -> `Seen
              | None -> `Cold)
        in
        let action =
          match mem with
          | `Hit tr -> `Replay tr
          | (`Seen | `Cold) as m -> (
              (* in-memory miss: a sibling process may have recorded
                 this key already — probe the store before paying for
                 an execution *)
              match store_probe ctx key with
              | Some tr ->
                  Mutex.protect ctx.traces_mu (fun () ->
                      ctx.s_hits <- ctx.s_hits + 1);
                  `Replay tr
              | None ->
                  Mutex.protect ctx.traces_mu (fun () ->
                      ctx.s_misses <- ctx.s_misses + 1;
                      if m = `Cold && ctx.engine <> Replay then
                        Hashtbl.replace ctx.traces key Seen_once);
                  if m = `Seen || ctx.engine = Replay then `Record
                  else `Execute)
        in
        match action with
        | `Replay tr -> (replay_cell ctx c tr, "replay")
        | `Execute -> (Pipeline.simulate c, "execute")
        | `Record ->
            let r, tr = Pipeline.simulate_recorded c in
            (match tr with
            | None -> () (* unreplayable after all; keep executing *)
            | Some tr ->
                Mutex.protect ctx.traces_mu (fun () ->
                    match Hashtbl.find_opt ctx.traces key with
                    | Some (Recorded _) -> () (* a racing worker won *)
                    | _ ->
                        Hashtbl.replace ctx.traces key (Recorded tr);
                        ctx.s_recorded <- ctx.s_recorded + 1;
                        ctx.s_bytes <- ctx.s_bytes + Rc_machine.Dtrace.bytes tr);
                store_publish ctx key tr);
            (r, "execute")
      end

(** The compile side of {!run_cell}: prepare/allocate through the
    context's memo tables (warm across calls), then the cheap
    timing-dependent back half on a fresh template copy. *)
let compile_cell ctx (b : Wutil.bench) (opts : Pipeline.options) =
  Pipeline.compile_allocated opts (allocated ctx b opts)

(** The simulate side of {!run_cell}, unmemoised: every call goes to
    the engine, so a repeated configuration is re-timed through the
    trace cache (and reports a cache hit) instead of being served from
    the cell memo.  This is the server's [/run] path. *)
let simulate_cell ctx (c : Pipeline.compiled) = simulate_engine ctx c

let run_key (b : Wutil.bench) opts = b.Wutil.name ^ "#" ^ opts_key opts

(** Compile and simulate one benchmark under one configuration
    (memoised), returning the full telemetry cell. *)
let run_cell ctx (b : Wutil.bench) (opts : Pipeline.options) =
  let key = run_key b opts in
  Rc_par.Memo.find_or_compute ctx.runs key (fun () ->
      let c = compile_cell ctx b opts in
      let r, _engine_used = simulate_engine ctx c in
      {
        c_result = r;
        c_breakdown = c.Pipeline.breakdown;
        c_spills = c.Pipeline.spills;
        c_passes = c.Pipeline.passes;
      })

(** Compile and simulate one benchmark under one configuration
    (memoised). *)
let run ctx b opts =
  let c = run_cell ctx b opts in
  (c.c_result, c.c_breakdown, c.c_spills)

let unlimited = 2048

(** The paper's base configuration (section 5.3). *)
let base_opts () =
  Pipeline.options ~opt:Rc_opt.Pass.Classical ~issue:1 ~mem_channels:2
    ~core_int:unlimited ~core_float:unlimited ()

let base_cycles ctx (b : Wutil.bench) =
  Rc_par.Memo.find_or_compute ctx.base_cycles b.Wutil.name (fun () ->
      let r, _, _ = run ctx b (base_opts ()) in
      float_of_int r.Rc_machine.Machine.cycles)

let speedup ctx b opts =
  let r, _, _ = run ctx b opts in
  base_cycles ctx b /. float_of_int r.Rc_machine.Machine.cycles

(* --- register-file parameterisation ----------------------------------- *)

(** FP sweeps use the paper's double-counted labels. *)
let fp_actual label = max 6 (label / 2)

let fixed_float_for_int_benches = 32 (* 64 paper registers *)
let fixed_int_for_fp_benches = 64
let rc_total_int = 256
let rc_total_float = 128 (* 256 paper registers *)

(** Options for one benchmark given the varied core size (paper label)
    and whether RC support is present. *)
let reg_opts (b : Wutil.bench) ~label ~rc ?opt ?(issue = 4) ?mem_channels
    ?(lat = Rc_isa.Latency.default) ?(model = Rc_core.Model.default)
    ?(combine = true) ?(extra_stage = false) () =
  match b.Wutil.kind with
  | Wutil.Int_bench ->
      Pipeline.options ~rc ?opt ~issue ?mem_channels ~lat ~model ~combine
        ~extra_stage ~core_int:label ~core_float:fixed_float_for_int_benches
        ~total_int:rc_total_int ~total_float:fixed_float_for_int_benches ()
  | Wutil.Float_bench ->
      Pipeline.options ~rc ?opt ~issue ?mem_channels ~lat ~model ~combine
        ~extra_stage ~core_int:fixed_int_for_fp_benches
        ~core_float:(fp_actual label) ~total_int:fixed_int_for_fp_benches
        ~total_float:rc_total_float ()

let unlimited_opts ?(issue = 4) ?mem_channels ?(lat = Rc_isa.Latency.default)
    () =
  Pipeline.options ~issue ?mem_channels ~lat ~core_int:unlimited
    ~core_float:unlimited ()

(** The per-benchmark small-core size used in Figures 10-13: 16 integer
    registers for integer benchmarks, 32 (paper label) floating-point
    registers for floating-point benchmarks. *)
let small_label (b : Wutil.bench) =
  match b.Wutil.kind with Wutil.Int_bench -> 16 | Wutil.Float_bench -> 32

(* --- batched prefetch --------------------------------------------------- *)

let trace_key (c : Pipeline.compiled) =
  Rc_isa.Image.fingerprint c.Pipeline.image ^ "#" ^ semantic_key c.Pipeline.opts

(** Publish a prefetched cell under its run-memo key so the table
    thunks find it already simulated.  [find_or_compute] with a
    constant thunk: if a racing caller beat us to the key, both
    computed the identical pure value. *)
let memo_cell ctx b opts (c : Pipeline.compiled) r =
  ignore
    (Rc_par.Memo.find_or_compute ctx.runs (run_key b opts) (fun () ->
         {
           c_result = r;
           c_breakdown = c.Pipeline.breakdown;
           c_spills = c.Pipeline.spills;
           c_passes = c.Pipeline.passes;
         }))

(** One prefetch unit of work: all compiled cells sharing a trace key
    (replay-safe), or a single cell that is not replay-safe. *)
type prefetch_task =
  | Group of string * (Wutil.bench * Pipeline.options * Pipeline.compiled) list
  | Unsafe of Wutil.bench * Pipeline.options * Pipeline.compiled

let compiled_of (_, _, c) = c

let run_prefetch_task ctx = function
  | Unsafe (b, opts, c) ->
      Mutex.protect ctx.traces_mu (fun () -> ctx.s_unsafe <- ctx.s_unsafe + 1);
      memo_cell ctx b opts c (Pipeline.simulate c)
  | Group (key, cells) -> (
      let cached =
        Mutex.protect ctx.traces_mu (fun () -> Hashtbl.find_opt ctx.traces key)
      in
      let replay_all tr =
        Mutex.protect ctx.traces_mu (fun () ->
            ctx.s_hits <- ctx.s_hits + List.length cells);
        let rs = replay_batch_cells ctx (List.map compiled_of cells) tr in
        List.iter2 (fun (b, opts, c) r -> memo_cell ctx b opts c r) cells rs
      in
      match cached with
      | Some (Recorded tr) ->
          (* warm cache (an earlier figure recorded this key): the
             whole group re-times in one pass *)
          replay_all tr
      | (None | Some Seen_once) as cached -> (
          match store_probe ctx key with
          | Some tr ->
              (* a sibling process recorded this key: replay the whole
                 group from the store's copy *)
              replay_all tr
          | None -> (
          match cells with
          | [ (b, opts, c) ] when cached = None && ctx.store = None ->
              (* a trace nothing else in this table can replay: record
                 nothing — recording costs time and residency, and a
                 singleton can only lose against plain execution.  Note
                 the sighting so a later table re-seeing the key
                 records (the Auto policy).  With a store attached the
                 trade flips — recording costs a few percent once and
                 every later process replays the cell from disk — so
                 singletons then take the record-and-publish branch
                 below. *)
              Mutex.protect ctx.traces_mu (fun () ->
                  ctx.s_misses <- ctx.s_misses + 1;
                  if not (Hashtbl.mem ctx.traces key) then
                    Hashtbl.replace ctx.traces key Seen_once);
              memo_cell ctx b opts c (Pipeline.simulate c)
          | [] -> ()
          | (b0, o0, c0) :: rest -> (
              (* a shared trace (or a key re-sighted across tables):
                 record the leader at near-execute cost, re-time every
                 other member in one batched pass *)
              let r0, tr = Pipeline.simulate_recorded c0 in
              Mutex.protect ctx.traces_mu (fun () ->
                  ctx.s_misses <- ctx.s_misses + 1);
              memo_cell ctx b0 o0 c0 r0;
              match tr with
              | None ->
                  (* unreplayable after all (overflowed the packed
                     layout): fall back to executing the group *)
                  List.iter
                    (fun (b, opts, c) ->
                      Mutex.protect ctx.traces_mu (fun () ->
                          ctx.s_misses <- ctx.s_misses + 1);
                      memo_cell ctx b opts c (Pipeline.simulate c))
                    rest
              | Some tr ->
                  Mutex.protect ctx.traces_mu (fun () ->
                      match Hashtbl.find_opt ctx.traces key with
                      | Some (Recorded _) -> () (* a racing worker won *)
                      | _ ->
                          Hashtbl.replace ctx.traces key (Recorded tr);
                          ctx.s_recorded <- ctx.s_recorded + 1;
                          ctx.s_bytes <-
                            ctx.s_bytes + Rc_machine.Dtrace.bytes tr);
                  store_publish ctx key tr;
                  if rest <> [] then begin
                    Mutex.protect ctx.traces_mu (fun () ->
                        ctx.s_hits <- ctx.s_hits + List.length rest);
                    let rs =
                      replay_batch_cells ctx (List.map compiled_of rest) tr
                    in
                    List.iter2
                      (fun (b, opts, c) r -> memo_cell ctx b opts c r)
                      rest rs
                  end))))

(** Simulate a table's declared dependencies ahead of its thunk
    fan-out: compile every distinct not-yet-simulated cell (plus each
    benchmark's base-configuration cell) on the pool, group the
    replay-safe ones by trace key, and run one {!run_prefetch_task} per
    group — so K grid cells over one image cost one recording and one
    batched decode pass instead of K executions.  Inactive under the
    [Execute] engine or [batch = false]; the thunks then fall through
    to {!simulate_engine}'s per-cell policy.  Deps are a performance
    declaration, not a correctness contract: a cell missing from its
    table's deps is simply simulated per-cell. *)
let prefetch ctx (deps : (Wutil.bench * Pipeline.options) list) =
  if ctx.engine <> Execute && ctx.batch then begin
    let seen = Hashtbl.create 64 in
    let bases = Hashtbl.create 16 in
    let keep acc ((b, opts) as dep) =
      let key = run_key b opts in
      if Hashtbl.mem seen key || Rc_par.Memo.find_opt ctx.runs key <> None
      then acc
      else begin
        Hashtbl.add seen key ();
        dep :: acc
      end
    in
    let distinct =
      List.rev
        (List.fold_left
           (fun acc ((b : Wutil.bench), _ as dep) ->
             let acc = keep acc dep in
             if Hashtbl.mem bases b.Wutil.name then acc
             else begin
               Hashtbl.add bases b.Wutil.name ();
               keep acc (b, base_opts ())
             end)
           [] deps)
    in
    match distinct with
    | [] -> ()
    | distinct ->
        let compiled =
          Rc_par.Pool.map_cells ctx.pool
            (fun (b, opts) -> (b, opts, compile_cell ctx b opts))
            distinct
        in
        let groups = Hashtbl.create 64 in
        let order = ref [] in
        let unsafe = ref [] in
        List.iter
          (fun ((b, opts, (c : Pipeline.compiled)) as cell) ->
            if
              Rc_machine.Trace_replay.replay_safe
                (Pipeline.machine_config c.Pipeline.opts)
            then begin
              let key = trace_key c in
              match Hashtbl.find_opt groups key with
              | Some r -> r := cell :: !r
              | None ->
                  Hashtbl.add groups key (ref [ cell ]);
                  order := key :: !order
            end
            else unsafe := Unsafe (b, opts, c) :: !unsafe)
          compiled;
        let tasks =
          List.rev_map
            (fun key -> Group (key, List.rev !(Hashtbl.find groups key)))
            !order
          @ List.rev !unsafe
        in
        ignore (Rc_par.Pool.map_cells ctx.pool (run_prefetch_task ctx) tasks)
  end

(* --- parallel fan-out --------------------------------------------------- *)

(** One table cell: the configurations it will simulate ([deps], the
    batching prefetch's work list) and the thunk producing its column
    values (evaluated after the prefetch, against warm memo tables). *)
type cell_spec = {
  deps : (Wutil.bench * Pipeline.options) list;
  eval : unit -> float list;
}

(** A single-speedup cell. *)
let sp_spec ctx b opts =
  { deps = [ (b, opts) ]; eval = (fun () -> [ speedup ctx b opts ]) }

(** Evaluate one table's cells on the context's pool: first the batched
    prefetch over every declared dependency, then each cell's thunk,
    flattened in declaration order and reassembled — so the resulting
    rows are identical for every jobs count, engine and batch setting
    (cell values are memoised pure computations, and
    {!Rc_par.Pool.map_cells} collects by index). *)
let par_rows ctx (rows : (string * cell_spec list) list) :
    (string * float list) list =
  prefetch ctx
    (List.concat_map
       (fun (_, cells) -> List.concat_map (fun s -> s.deps) cells)
       rows);
  let chunks =
    Rc_par.Pool.map_cells ctx.pool
      (fun s -> s.eval ())
      (List.concat_map snd rows)
  in
  let rest = ref chunks in
  List.map
    (fun (name, cells) ->
      let vs =
        List.map
          (fun _ ->
            match !rest with
            | chunk :: tl ->
                rest := tl;
                chunk
            | [] -> invalid_arg "Experiments.par_rows: cell count mismatch")
          cells
      in
      (name, List.concat vs))
    rows

(* --- tables ------------------------------------------------------------ *)

type table = {
  id : string;
  title : string;
  columns : string list;
  rows : (string * float list) list;  (** benchmark, one value per column *)
  note : string;
}

let geomean xs =
  match List.filter (fun x -> x > 0.0) xs with
  | [] -> 0.0
  | xs ->
      exp (List.fold_left (fun a x -> a +. log x) 0.0 xs /. float_of_int (List.length xs))

let with_geomean t =
  (* One transpose pass instead of [List.nth] per (row, column); the
     per-column values stay in row order so the float reductions in
     [geomean] associate exactly as before. *)
  let cols = List.length t.columns in
  let acc = Array.make cols [] in
  List.iter
    (fun (_, vs) -> List.iteri (fun k v -> acc.(k) <- v :: acc.(k)) vs)
    t.rows;
  let means = List.init cols (fun k -> geomean (List.rev acc.(k))) in
  { t with rows = t.rows @ [ ("geomean", means) ] }

let print_table ppf t =
  Fmt.pf ppf "@.== %s: %s ==@." t.id t.title;
  if t.note <> "" then Fmt.pf ppf "%s@." t.note;
  let w = 10 in
  Fmt.pf ppf "%-12s" "benchmark";
  List.iter (fun c -> Fmt.pf ppf "%*s" w c) t.columns;
  Fmt.pf ppf "@.";
  List.iter
    (fun (name, vs) ->
      Fmt.pf ppf "%-12s" name;
      List.iter (fun v -> Fmt.pf ppf "%*.2f" w v) vs;
      Fmt.pf ppf "@.")
    t.rows

(* --- Table 1 ----------------------------------------------------------- *)

let table1 () =
  let rows2 = Rc_isa.Latency.table1 Rc_isa.Latency.default in
  let rows4 = Rc_isa.Latency.table1 (Rc_isa.Latency.v ~load:4 ()) in
  {
    id = "table1";
    title = "Instruction latencies";
    columns = [ "2cyc-load"; "4cyc-load" ];
    rows =
      List.map2
        (fun (n, l2) (_, l4) -> (n, [ float_of_int l2; float_of_int l4 ]))
        rows2 rows4;
    note = "Deterministic latencies assumed by every simulation (Table 1).";
  }

(* --- Figure 7 ---------------------------------------------------------- *)

let issue_rates = [ 1; 2; 4; 8 ]

let fig7 ctx =
  let columns = List.map (fun i -> Fmt.str "%d-issue" i) issue_rates in
  let rows =
    par_rows ctx
      (List.map
         (fun (b : Wutil.bench) ->
           ( b.Wutil.name,
             List.map
               (fun issue -> sp_spec ctx b (unlimited_opts ~issue ()))
               issue_rates ))
         (Registry.all ()))
  in
  with_geomean
    {
      id = "fig7";
      title = "Speedup with unlimited registers vs issue rate";
      columns;
      rows;
      note =
        "Memory channels: 2 for 1/2/4-issue, 4 for 8-issue; 2-cycle loads.";
    }

(* --- Figure 8 ---------------------------------------------------------- *)

let int_labels = [ 8; 16; 24; 32; 64 ]
let fp_labels = [ 16; 32; 64; 128 ]

let fig8_rows ctx benches labels =
  par_rows ctx
    (List.map
       (fun (b : Wutil.bench) ->
         ( b.Wutil.name,
           List.map
             (fun label ->
               let o_no = reg_opts b ~label ~rc:false () in
               let o_rc = reg_opts b ~label ~rc:true () in
               {
                 deps = [ (b, o_no); (b, o_rc) ];
                 eval =
                   (fun () -> [ speedup ctx b o_no; speedup ctx b o_rc ]);
               })
             labels
           @ [ sp_spec ctx b (unlimited_opts ()) ] ))
       benches)

let fig8_columns labels =
  List.concat_map (fun l -> [ Fmt.str "no%d" l; Fmt.str "rc%d" l ]) labels
  @ [ "unlim" ]

let fig8_int ctx =
  with_geomean
    {
      id = "fig8-int";
      title = "Speedup vs core integer registers (4-issue, 2-cycle load)";
      columns = fig8_columns int_labels;
      rows = fig8_rows ctx (Registry.integer ()) int_labels;
      note = "noN = without RC, rcN = with RC (256 total); dotted line = unlim.";
    }

let fig8_fp ctx =
  with_geomean
    {
      id = "fig8-fp";
      title = "Speedup vs core FP registers (4-issue, 2-cycle load)";
      columns = fig8_columns fp_labels;
      rows = fig8_rows ctx (Registry.floating ()) fp_labels;
      note =
        "FP register counts use the paper's double-counted labels \
         (simulator holds one double per register).";
    }

(* --- Figure 9 ---------------------------------------------------------- *)

(** Code-size increase after register allocation, in percent; for the
    with-RC model also the part caused by extended-register save/restore
    around calls (the black bars). *)
let size_increase (bk : Rc_isa.Mcode.size_breakdown) =
  let open Rc_isa.Mcode in
  let ideal = float_of_int (bk.normal + bk.save) in
  let extra = float_of_int (bk.spill + bk.xsave + bk.connects) in
  100.0 *. extra /. ideal

let xsave_increase (bk : Rc_isa.Mcode.size_breakdown) =
  let open Rc_isa.Mcode in
  let ideal = float_of_int (bk.normal + bk.save) in
  100.0 *. float_of_int bk.xsave /. ideal

let fig9_rows ctx benches labels =
  par_rows ctx
    (List.map
       (fun (b : Wutil.bench) ->
         ( b.Wutil.name,
           List.map
             (fun label ->
               let o_no = reg_opts b ~label ~rc:false () in
               let o_rc = reg_opts b ~label ~rc:true () in
               {
                 deps = [ (b, o_no); (b, o_rc) ];
                 eval =
                   (fun () ->
                     let _, bk_no, _ = run ctx b o_no in
                     let _, bk_rc, _ = run ctx b o_rc in
                     [
                       size_increase bk_no;
                       size_increase bk_rc;
                       xsave_increase bk_rc;
                     ]);
               })
             labels ))
       benches)

let fig9_columns labels =
  List.concat_map
    (fun l -> [ Fmt.str "no%d" l; Fmt.str "rc%d" l; Fmt.str "xs%d" l ])
    labels

let fig9_int ctx =
  {
    id = "fig9-int";
    title = "Code size increase %% due to spill/connect code (integer)";
    columns = fig9_columns int_labels;
    rows = fig9_rows ctx (Registry.integer ()) int_labels;
    note =
      "noN = without RC; rcN = with RC (spill+connect+xsave); xsN = \
       extended-register save/restore part of rcN (black bars).";
  }

let fig9_fp ctx =
  {
    id = "fig9-fp";
    title = "Code size increase %% due to spill/connect code (FP)";
    columns = fig9_columns fp_labels;
    rows = fig9_rows ctx (Registry.floating ()) fp_labels;
    note = "";
  }

(* --- per-kernel figures ------------------------------------------------- *)

let kernel_figures ctx (b : Wutil.bench) =
  let labels =
    match b.Wutil.kind with
    | Wutil.Int_bench -> int_labels
    | Wutil.Float_bench -> fp_labels
  in
  [
    {
      id = "kernel-speedup";
      title = Fmt.str "Speedup vs core registers: %s" b.Wutil.name;
      columns = fig8_columns labels;
      rows = fig8_rows ctx [ b ] labels;
      note = "noN = without RC, rcN = with RC; unlim = unlimited registers.";
    };
    {
      id = "kernel-size";
      title = Fmt.str "Code size increase %% over ideal code: %s" b.Wutil.name;
      columns = fig9_columns labels;
      rows = fig9_rows ctx [ b ] labels;
      note =
        "noN = without RC; rcN = with RC (spill+connect+xsave); xsN = \
         extended-register save/restore part of rcN.";
    };
  ]

(* --- Figures 10 and 11 -------------------------------------------------- *)

let fig10_11 ctx ~load ~id =
  let lat = Rc_isa.Latency.v ~load () in
  let columns =
    List.concat_map
      (fun i -> [ Fmt.str "no/%d" i; Fmt.str "rc/%d" i; Fmt.str "un/%d" i ])
      issue_rates
  in
  let rows =
    par_rows ctx
      (List.map
         (fun (b : Wutil.bench) ->
           let label = small_label b in
           ( b.Wutil.name,
             List.map
               (fun issue ->
                 let o_no = reg_opts b ~label ~rc:false ~issue ~lat () in
                 let o_rc = reg_opts b ~label ~rc:true ~issue ~lat () in
                 let o_un = unlimited_opts ~issue ~lat () in
                 {
                   deps = [ (b, o_no); (b, o_rc); (b, o_un) ];
                   eval =
                     (fun () ->
                       [
                         speedup ctx b o_no;
                         speedup ctx b o_rc;
                         speedup ctx b o_un;
                       ]);
                 })
               issue_rates ))
         (Registry.all ()))
  in
  with_geomean
    {
      id;
      title =
        Fmt.str
          "Speedup vs issue rate (%d-cycle load, 16 int / 32 fp core regs)"
          load;
      columns;
      rows;
      note = "no = without RC, rc = with RC, un = unlimited registers.";
    }

let fig10 ctx = fig10_11 ctx ~load:2 ~id:"fig10"
let fig11 ctx = fig10_11 ctx ~load:4 ~id:"fig11"

(* --- Figure 12 ---------------------------------------------------------- *)

let fig12 ctx =
  let scenarios =
    [
      ("0cyc", 0, false);
      ("0cyc+st", 0, true);
      ("1cyc", 1, false);
      ("1cyc+st", 1, true);
    ]
  in
  let columns = "noRC" :: List.map (fun (n, _, _) -> n) scenarios in
  let rows =
    par_rows ctx
      (List.map
         (fun (b : Wutil.bench) ->
           let label = small_label b in
           ( b.Wutil.name,
             sp_spec ctx b (reg_opts b ~label ~rc:false ())
             :: List.map
                  (fun (_, connect, extra_stage) ->
                    let lat = Rc_isa.Latency.v ~connect () in
                    sp_spec ctx b
                      (reg_opts b ~label ~rc:true ~lat ~extra_stage ()))
                  scenarios ))
         (Registry.all ()))
  in
  with_geomean
    {
      id = "fig12";
      title =
        "Speedup vs RC implementation scenario (4-issue, 2-cycle load)";
      columns;
      rows;
      note =
        "0cyc/1cyc = connect latency; +st = extra pipeline stage for \
         mapping-table access.";
    }

(* --- Figure 13 ---------------------------------------------------------- *)

let fig13 ctx =
  let columns =
    List.concat_map
      (fun load ->
        List.concat_map
          (fun ch -> [ Fmt.str "no%dc/l%d" ch load; Fmt.str "rc%dc/l%d" ch load ])
          [ 2; 4 ])
      [ 2; 4 ]
  in
  let rows =
    par_rows ctx
      (List.map
         (fun (b : Wutil.bench) ->
           let label = small_label b in
           ( b.Wutil.name,
             List.concat_map
               (fun load ->
                 let lat = Rc_isa.Latency.v ~load () in
                 List.map
                   (fun mem_channels ->
                     let o_no =
                       reg_opts b ~label ~rc:false ~mem_channels ~lat ()
                     in
                     let o_rc =
                       reg_opts b ~label ~rc:true ~mem_channels ~lat ()
                     in
                     {
                       deps = [ (b, o_no); (b, o_rc) ];
                       eval =
                         (fun () ->
                           [ speedup ctx b o_no; speedup ctx b o_rc ]);
                     })
                   [ 2; 4 ])
               [ 2; 4 ] ))
         (Registry.all ()))
  in
  with_geomean
    {
      id = "fig13";
      title = "Speedup vs memory channels (4-issue, 2- and 4-cycle load)";
      columns;
      rows;
      note =
        "noNc = without RC with N channels; rcNc = with RC; compare rc2c \
         against no4c: RC at 2 channels vs more memory ports.";
    }

(* --- ablations ----------------------------------------------------------- *)

let ablation_models ctx =
  let columns =
    List.map (fun m -> Fmt.str "m%d" (Rc_core.Model.number m)) Rc_core.Model.all
  in
  let rows =
    par_rows ctx
      (List.map
         (fun (b : Wutil.bench) ->
           let label = small_label b in
           ( b.Wutil.name,
             List.map
               (fun model ->
                 sp_spec ctx b (reg_opts b ~label ~rc:true ~model ()))
               Rc_core.Model.all ))
         (Registry.all ()))
  in
  with_geomean
    {
      id = "ablation-models";
      title = "Speedup per automatic-reset model (4-issue, small cores, RC)";
      columns;
      rows;
      note =
        "m1 no-reset, m2 write-reset, m3 write-reset-read-update (paper's \
         choice), m4 read/write-reset.";
    }

let ablation_combine ctx =
  let columns = [ "single"; "combined"; "sgl-size"; "cmb-size" ] in
  let rows =
    par_rows ctx
      (List.map
         (fun (b : Wutil.bench) ->
           let label = small_label b in
           let o_single = reg_opts b ~label ~rc:true ~combine:false () in
           let o_comb = reg_opts b ~label ~rc:true ~combine:true () in
           ( b.Wutil.name,
             [
               {
                 deps = [ (b, o_single); (b, o_comb) ];
                 eval =
                   (fun () ->
                     let _, bk_s, _ = run ctx b o_single in
                     let _, bk_c, _ = run ctx b o_comb in
                     [
                       speedup ctx b o_single;
                       speedup ctx b o_comb;
                       size_increase bk_s;
                       size_increase bk_c;
                     ]);
               };
             ] ))
         (Registry.all ()))
  in
  {
    id = "ablation-combine";
    title = "Single vs multiple-connect instructions (speedup, size%)";
    columns;
    rows;
    note = "Paper footnote 1: experiments use the combined connect forms.";
  }

let ablation_unroll ctx =
  (* The paper's closing prediction: "As new code parallelization methods
     become available, we expect that the RC method will become
     beneficial for architectures with 32 or more registers."  We proxy
     "more aggressive parallelization" with the unroll factor and measure
     at 32 core registers. *)
  let factors = [ 1; 2; 4; 8 ] in
  let columns =
    List.concat_map
      (fun f -> [ Fmt.str "no/u%d" f; Fmt.str "rc/u%d" f ])
      factors
  in
  let rows =
    par_rows ctx
      (List.map
         (fun (b : Wutil.bench) ->
           ( b.Wutil.name,
             List.map
               (fun factor ->
                 let opt = Rc_opt.Pass.Ilp factor in
                 let o_no = reg_opts b ~label:32 ~rc:false ~opt () in
                 let o_rc = reg_opts b ~label:32 ~rc:true ~opt () in
                 {
                   deps = [ (b, o_no); (b, o_rc) ];
                   eval =
                     (fun () -> [ speedup ctx b o_no; speedup ctx b o_rc ]);
                 })
               factors ))
         (Registry.all ()))
  in
  with_geomean
    {
      id = "ablation-unroll";
      title =
        "RC benefit at 32 core registers vs parallelization aggressiveness";
      columns;
      rows;
      note =
        "uN = unroll factor N (4-issue, 2-cycle load).  The paper's \
         conclusion predicts the rc/no gap at 32 registers to widen as \
         compilers parallelize more aggressively.";
    }

(* --- telemetry collection ------------------------------------------------ *)

(** Every cell simulated so far, merged deterministically: the memo
    snapshot is sorted by cell key, so the view is identical for every
    [--jobs] count (each cell is a memoised pure computation; only the
    wall-clock fields vary run to run). *)
let cells ctx =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Rc_par.Memo.bindings ctx.runs)

let pool_stats ctx = Rc_par.Pool.stats ctx.pool

let result_json (r : Rc_machine.Machine.result) =
  let open Rc_obs.Json in
  Obj
    [
      ("cycles", Int r.Rc_machine.Machine.cycles);
      ("issued", Int r.Rc_machine.Machine.issued);
      ("connects", Int r.Rc_machine.Machine.connects);
      ("extra_connects", Int r.Rc_machine.Machine.extra_connects);
      ("mem_ops", Int r.Rc_machine.Machine.mem_ops);
      ("branches", Int r.Rc_machine.Machine.branches);
      ("mispredicts", Int r.Rc_machine.Machine.mispredicts);
      ("data_stalls", Int r.Rc_machine.Machine.data_stalls);
      ("map_stalls", Int r.Rc_machine.Machine.map_stalls);
      ("channel_stalls", Int r.Rc_machine.Machine.channel_stalls);
      ("lost_data", Int r.Rc_machine.Machine.lost_data);
      ("lost_map", Int r.Rc_machine.Machine.lost_map);
      ("lost_channel", Int r.Rc_machine.Machine.lost_channel);
      ("lost_branch", Int r.Rc_machine.Machine.lost_branch);
      ("lost_fetch", Int r.Rc_machine.Machine.lost_fetch);
      ("checksum", Str (Int64.to_string r.Rc_machine.Machine.checksum));
    ]

let pass_json (p : Pipeline.pass_metric) =
  let open Rc_obs.Json in
  Obj
    [
      ("pass", Str p.Pipeline.p_name);
      ("wall_s", Float p.Pipeline.p_wall_s);
      ("size_in", Int p.Pipeline.p_size_in);
      ("size_out", Int p.Pipeline.p_size_out);
      ("spills", Int p.Pipeline.p_spills);
      ("connects", Int p.Pipeline.p_connects);
    ]

let breakdown_json (bk : Rc_isa.Mcode.size_breakdown) =
  let open Rc_obs.Json in
  Obj
    [
      ("normal", Int bk.Rc_isa.Mcode.normal);
      ("spill", Int bk.Rc_isa.Mcode.spill);
      ("save", Int bk.Rc_isa.Mcode.save);
      ("xsave", Int bk.Rc_isa.Mcode.xsave);
      ("connects", Int bk.Rc_isa.Mcode.connects);
    ]

let cell_json (key, c) =
  let open Rc_obs.Json in
  Obj
    [
      ("key", Str key);
      ("machine", result_json c.c_result);
      ("code_size", breakdown_json c.c_breakdown);
      ("spills", Int c.c_spills);
      ("passes", List (List.map pass_json c.c_passes));
    ]

(** Machine-readable dump of everything the context measured: one
    object per simulated cell (stall attribution, code size, per-pass
    compile metrics) plus the pool's per-domain telemetry. *)
let metrics_json ctx =
  let open Rc_obs.Json in
  let pool =
    List.map
      (fun (d : Rc_par.Pool.domain_stats) ->
        Obj
          [
            ("domain", Int d.Rc_par.Pool.d_slot);
            ("tasks", Int d.Rc_par.Pool.d_tasks);
            ("busy_s", Float d.Rc_par.Pool.d_busy_s);
            ("wait_s", Float d.Rc_par.Pool.d_wait_s);
          ])
      (pool_stats ctx)
  in
  let es = engine_stats ctx in
  Obj
    [
      ("scale", Int ctx.scale);
      ("jobs", Int (Rc_par.Pool.jobs ctx.pool));
      ("engine", Str (engine_name ctx.engine));
      ( "trace_cache",
        Obj
          [
            ("hits", Int es.hits);
            ("misses", Int es.misses);
            ("recorded", Int es.recorded);
            ("unsafe", Int es.unsafe);
            ("bytes", Int es.bytes);
            ("store_hits", Int es.store_hits);
            ("seg_hits", Int es.seg_hits);
            ("seg_misses", Int es.seg_misses);
            ("seg_fallbacks", Int es.seg_fallbacks);
            ("memo_bytes", Int es.memo_bytes);
          ] );
      ("cells", List (List.map cell_json (cells ctx)));
      ("pool", List pool);
    ]

(* --- registry ------------------------------------------------------------ *)

let all_figures ctx =
  [
    table1 ();
    fig7 ctx;
    fig8_int ctx;
    fig8_fp ctx;
    fig9_int ctx;
    fig9_fp ctx;
    fig10 ctx;
    fig11 ctx;
    fig12 ctx;
    fig13 ctx;
    ablation_models ctx;
    ablation_combine ctx;
    ablation_unroll ctx;
  ]

let by_id ctx id =
  match id with
  | "table1" -> Some (table1 ())
  | "fig7" -> Some (fig7 ctx)
  | "fig8" | "fig8-int" -> Some (fig8_int ctx)
  | "fig8-fp" -> Some (fig8_fp ctx)
  | "fig9" | "fig9-int" -> Some (fig9_int ctx)
  | "fig9-fp" -> Some (fig9_fp ctx)
  | "fig10" -> Some (fig10 ctx)
  | "fig11" -> Some (fig11 ctx)
  | "fig12" -> Some (fig12 ctx)
  | "fig13" -> Some (fig13 ctx)
  | "ablation-models" -> Some (ablation_models ctx)
  | "ablation-combine" -> Some (ablation_combine ctx)
  | "ablation-unroll" -> Some (ablation_unroll ctx)
  | _ -> None
