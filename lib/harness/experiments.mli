(** Regeneration of every table and figure of the paper's evaluation
    (section 5), plus the repository's ablations, over the twelve
    benchmark kernels.

    Speedups are computed exactly as in the paper: the base
    configuration is a single-issue processor with an unlimited number
    of registers using conventional compiler scalar optimisations
    (section 5.3). *)

open Rc_workloads

(** Memoising context: programs are prepared once per optimisation
    level and every (benchmark, configuration) simulation runs once.
    With [jobs > 1] the context owns a {!Rc_par.Pool} of that many
    domains and every table's cells are computed in parallel; the memo
    tables are domain-safe and single-flight, and tables are
    byte-identical for every jobs count. *)
type ctx

(** How cells are timed.  [Execute] always runs the execution-driven
    simulator.  [Replay] and [Auto] time repeated sightings of a
    compiled image fingerprint by trace replay
    ({!Rc_machine.Trace_replay}); they differ in the {e per-cell} path
    (the server's [/run]): [Replay] records on an image's first
    sighting, [Auto] (the default) only on its second, so images
    simulated once never hold a trace.  Under the batching prefetch
    (see {!create}) both engines know every group's size up front and
    record exactly when a trace will be reused.  All three engines
    produce byte-identical tables: replay reproduces
    {!Rc_machine.Machine.result} exactly. *)
type engine = Execute | Replay | Auto

val engine_name : engine -> string
val engine_of_string : string -> engine option

(** Trace-cache counters: every simulated cell increments exactly one
    of [hits] (timed by replaying a cached trace), [misses]
    (replay-eligible but executed) or [unsafe] (not replay-safe, forced
    execution); [recorded]/[bytes] count the resident traces.  Under
    [Execute] everything lands in [misses]. *)
type engine_stats = {
  hits : int;
  misses : int;
  recorded : int;
  unsafe : int;
  bytes : int;
  store_hits : int;
      (** subset of [hits] whose trace came from the on-disk store *)
  seg_hits : int;
      (** superblock timing-memo probes served (DESIGN.md §18) *)
  seg_misses : int;  (** superblock visits replayed per-entry and memoised *)
  seg_fallbacks : int;  (** superblock visits ineligible for the memo *)
  memo_bytes : int;  (** cumulative approximate memo-table footprint *)
}

(** [batch] (default [true]) enables the batching prefetch: before a
    table's thunk fan-out, its declared cells are compiled, the
    replay-safe ones grouped by trace key (image fingerprint + semantic
    knobs), and each group timed by one recording plus one
    {!Rc_machine.Trace_replay.replay_batch} pass — groups of one
    execute directly, recording nothing.  [batch:false] forces the
    per-cell engine policy for every cell (the [--per-cell] debugging
    switch).  [timing_memo] (default [true]) enables the superblock
    timing memo inside every replay ({!Rc_machine.Trace_replay});
    [timing_memo:false] is the [--no-timing-memo] escape hatch.
    Tables are byte-identical either way. *)
val create :
  ?scale:int ->
  ?jobs:int ->
  ?engine:engine ->
  ?batch:bool ->
  ?timing_memo:bool ->
  unit ->
  ctx

(** Number of computing domains of the context's pool. *)
val jobs : ctx -> int

val engine : ctx -> engine

(** Workload input scale the context was created with.  Every memoised
    cell is keyed under this scale, so callers feeding external
    requests into a shared context (the server) must reject mismatched
    scales. *)
val scale : ctx -> int

(** The context's domain pool, so long-lived owners (the server) can
    dispatch their own work onto the same domains. *)
val pool : ctx -> Rc_par.Pool.t

(** Snapshot of the trace-cache counters.  The cell {e results} are
    engine- and jobs-independent; only this hit/miss split varies. *)
val engine_stats : ctx -> engine_stats

(** Export the trace-cache counters into a metrics registry
    ([rcc_trace_cache_*]): hits/misses/recorded/unsafe as bridged
    counters, resident bytes as a gauge.  The server calls this before
    rendering [GET /metrics]. *)
val export_metrics : ctx -> Rc_obs.Metrics.t -> unit

(** Attach an on-disk trace store (lib/serve/store.ml, or any other
    second cache level) as two closures, keeping the harness ignorant
    of file formats.  [probe key] is consulted on every in-memory
    trace-cache miss {e before} deciding to execute or record — a hit
    replays (and counts as a cache hit — and a [store_hits] — installing
    the trace in memory); [publish key trace] is offered every freshly
    recorded trace.  With a store attached, batched prefetch groups of
    one also record and publish (instead of executing trace-less), so a
    warmed store lets later processes replay every replay-safe cell.
    Both are called outside the cache mutex and may do disk IO; they
    must be safe to call from any pool domain. *)
val set_store :
  ctx ->
  probe:(string -> Rc_machine.Dtrace.t option) ->
  publish:(string -> Rc_machine.Dtrace.t -> unit) ->
  unit

(** Join the context's worker domains.  The context must not be used
    afterwards. *)
val shutdown : ctx -> unit

(** Everything the harness keeps about one simulated cell: the machine
    result (with its slot-level stall attribution) plus the compile-side
    telemetry. *)
type cell = {
  c_result : Rc_machine.Machine.result;
  c_breakdown : Rc_isa.Mcode.size_breakdown;
  c_spills : int;
  c_passes : Pipeline.pass_metric list;
}

(** Compile and simulate one benchmark under one configuration
    (memoised), returning the full telemetry cell. *)
val run_cell : ctx -> Wutil.bench -> Pipeline.options -> cell

(** The compile side of {!run_cell}: prepare and register-allocate
    through the context's memo tables (warm across calls), then the
    cheap timing-dependent back half on a fresh template copy. *)
val compile_cell : ctx -> Wutil.bench -> Pipeline.options -> Pipeline.compiled

(** The simulate side of {!run_cell}, {e unmemoised}: every call goes
    to the context's timing engine, so a repeated configuration is
    re-timed through the trace cache — and counts a cache {!engine_stats}
    hit — instead of being served from the cell memo.  Reports the
    engine that produced the result: ["execute"] or ["replay"]. *)
val simulate_cell :
  ctx -> Pipeline.compiled -> Rc_machine.Machine.result * string

(** Compile and simulate one benchmark under one configuration
    (memoised).  Returns the machine result, the static code-size
    breakdown and the spilled-register count. *)
val run :
  ctx ->
  Wutil.bench ->
  Pipeline.options ->
  Rc_machine.Machine.result * Rc_isa.Mcode.size_breakdown * int

(** Every cell simulated so far, sorted by cell key — a deterministic
    merge of the per-domain work regardless of the jobs count (only the
    wall-clock fields vary run to run). *)
val cells : ctx -> (string * cell) list

(** Per-domain telemetry of the context's pool. *)
val pool_stats : ctx -> Rc_par.Pool.domain_stats list

(** Machine-readable dump of everything the context measured: one
    object per simulated cell (stall attribution, code size, per-pass
    compile metrics) plus the pool's per-domain telemetry. *)
val metrics_json : ctx -> Rc_obs.Json.t

(** The machine counters of one result as a stable-keyed JSON object. *)
val result_json : Rc_machine.Machine.result -> Rc_obs.Json.t

(** One pipeline stage's metrics as a stable-keyed JSON object. *)
val pass_json : Pipeline.pass_metric -> Rc_obs.Json.t

(** A static code-size breakdown as a stable-keyed JSON object. *)
val breakdown_json : Rc_isa.Mcode.size_breakdown -> Rc_obs.Json.t

(** Stand-in core size for "unlimited registers". *)
val unlimited : int

(** The options slice that determines the dynamic instruction stream
    beyond the image bytes (reset model, register file shapes) —
    [fingerprint ^ "#" ^ semantic_key] is the trace-cache key; every
    other knob is free to vary between recording and replay. *)
val semantic_key : Pipeline.options -> string

(** Cycles of the paper's base configuration for this benchmark. *)
val base_cycles : ctx -> Wutil.bench -> float

val speedup : ctx -> Wutil.bench -> Pipeline.options -> float

(** Simulator registers for a paper FP label (doubles take two paper
    registers, one simulator register). *)
val fp_actual : int -> int

(** Experiment configuration for one benchmark at a varied core size
    (paper label): integer benchmarks vary the integer file, FP
    benchmarks the FP file, the other file held fixed (section 5.2). *)
val reg_opts :
  Wutil.bench ->
  label:int ->
  rc:bool ->
  ?opt:Rc_opt.Pass.level ->
  ?issue:int ->
  ?mem_channels:int ->
  ?lat:Rc_isa.Latency.t ->
  ?model:Rc_core.Model.t ->
  ?combine:bool ->
  ?extra_stage:bool ->
  unit ->
  Pipeline.options

val unlimited_opts :
  ?issue:int -> ?mem_channels:int -> ?lat:Rc_isa.Latency.t -> unit -> Pipeline.options

(** 16 integer registers for integer benchmarks, 32 (paper label) FP
    registers for FP benchmarks — the small cores of Figures 10–13. *)
val small_label : Wutil.bench -> int

(** {2 Result tables} *)

type table = {
  id : string;
  title : string;
  columns : string list;
  rows : (string * float list) list;  (** benchmark, one value per column *)
  note : string;
}

val geomean : float list -> float
val with_geomean : table -> table
val print_table : Format.formatter -> table -> unit

(** Figure 9's code-size metrics (percent over ideal code). *)
val size_increase : Rc_isa.Mcode.size_breakdown -> float

val xsave_increase : Rc_isa.Mcode.size_breakdown -> float

(** {2 The experiments} *)

val table1 : unit -> table
val fig7 : ctx -> table
val fig8_int : ctx -> table
val fig8_fp : ctx -> table
val fig9_int : ctx -> table
val fig9_fp : ctx -> table
val fig10 : ctx -> table
val fig11 : ctx -> table
val fig12 : ctx -> table
val fig13 : ctx -> table
val ablation_models : ctx -> table
val ablation_combine : ctx -> table
val ablation_unroll : ctx -> table
val all_figures : ctx -> table list

(** Figure-8/9-style sweeps (speedup and code-size vs core registers)
    for a single benchmark — the entry point ad-hoc kernels (the
    service's user-submitted specs, wrapped as {!Wutil.bench} values)
    share with the built-in corpus.  The cells run through the same
    memo tables, batching prefetch and trace cache — keyed by the
    compiled image's {!Rc_isa.Image.fingerprint}, so nothing below
    this line distinguishes a submitted image from a registry one, and
    an attached store serves both. *)
val kernel_figures : ctx -> Wutil.bench -> table list

(** Look an experiment up by its command-line id ("fig8-int",
    "ablation-models", ...). *)
val by_id : ctx -> string -> table option
