(** Process-context save and restore (paper section 4.2).

    Programs compiled for the extended architecture need core registers,
    extended registers {e and} the connection information preserved
    across a context switch.  Programs compiled for the original
    architecture only need the core registers; the PSW
    [extended_arch] flag lets the context-switch routine pick the smaller
    format. *)

open Rc_isa

(** A view of the register state of one machine, shared with the context
    switcher.  Arrays are the full physical files; the tables are live
    (restoring writes through them). *)
type machine_view = {
  iregs : int64 array;
  fregs : float array;
  imap : Map_table.t;
  fmap : Map_table.t;
  psw : Psw.t;
}

type format = Original | Extended

type t = {
  format : format;
  saved_psw : Psw.t;
  core_iregs : int64 array;
  core_fregs : float array;
  ext_iregs : int64 array;  (** empty in [Original] format *)
  ext_fregs : float array;
  iread : int array;  (** connection information; empty in [Original] *)
  iwrite : int array;
  fread : int array;
  fwrite : int array;
}

let format_of_psw (psw : Psw.t) =
  if psw.Psw.extended_arch then Extended else Original

(** Number of 64-bit words the saved context occupies — the payoff of the
    dual-format optimisation is visible here. *)
let words t =
  Array.length t.core_iregs + Array.length t.core_fregs
  + Array.length t.ext_iregs + Array.length t.ext_fregs
  + Array.length t.iread + Array.length t.iwrite + Array.length t.fread
  + Array.length t.fwrite + 1 (* psw *)

let save (m : machine_view) =
  let icore = m.imap.Map_table.file.Reg.core in
  let fcore = m.fmap.Map_table.file.Reg.core in
  let format = format_of_psw m.psw in
  let sub_ext a core = Array.sub a core (Array.length a - core) in
  match format with
  | Original ->
      {
        format;
        saved_psw = Psw.copy m.psw;
        core_iregs = Array.sub m.iregs 0 icore;
        core_fregs = Array.sub m.fregs 0 fcore;
        ext_iregs = [||];
        ext_fregs = [||];
        iread = [||];
        iwrite = [||];
        fread = [||];
        fwrite = [||];
      }
  | Extended ->
      {
        format;
        saved_psw = Psw.copy m.psw;
        core_iregs = Array.sub m.iregs 0 icore;
        core_fregs = Array.sub m.fregs 0 fcore;
        ext_iregs = sub_ext m.iregs icore;
        ext_fregs = sub_ext m.fregs fcore;
        iread = Array.copy m.imap.Map_table.read_map;
        iwrite = Array.copy m.imap.Map_table.write_map;
        fread = Array.copy m.fmap.Map_table.read_map;
        fwrite = Array.copy m.fmap.Map_table.write_map;
      }

let restore (m : machine_view) (c : t) =
  let icore = m.imap.Map_table.file.Reg.core in
  let fcore = m.fmap.Map_table.file.Reg.core in
  Array.blit c.core_iregs 0 m.iregs 0 (Array.length c.core_iregs);
  Array.blit c.core_fregs 0 m.fregs 0 (Array.length c.core_fregs);
  (match c.format with
  | Original ->
      (* A program compiled for the original architecture runs with all
         maps at home; restoring them keeps execution correct even if the
         previous occupant of the processor had live connections. *)
      Map_table.reset m.imap;
      Map_table.reset m.fmap
  | Extended ->
      Array.blit c.ext_iregs 0 m.iregs icore (Array.length c.ext_iregs);
      Array.blit c.ext_fregs 0 m.fregs fcore (Array.length c.ext_fregs);
      Array.blit c.iread 0 m.imap.Map_table.read_map 0 (Array.length c.iread);
      Array.blit c.iwrite 0 m.imap.Map_table.write_map 0
        (Array.length c.iwrite);
      Array.blit c.fread 0 m.fmap.Map_table.read_map 0 (Array.length c.fread);
      Array.blit c.fwrite 0 m.fmap.Map_table.write_map 0
        (Array.length c.fwrite));
  m.psw.Psw.map_enable <- c.saved_psw.Psw.map_enable;
  m.psw.Psw.extended_arch <- c.saved_psw.Psw.extended_arch
