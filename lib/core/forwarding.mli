(** Zero-cycle connect forwarding (paper section 2.4, Figures 4–6).

    Executes one issue group under either pipeline variant of Figure 4,
    demonstrating that forwarding delivers correct operands to
    instructions issued in the same cycle as a connect:

    - {!Fetch_after_dispatch} (Figure 5): connects forward updated
      {e physical register numbers} during dispatch;
    - {!Fetch_before_dispatch} (Figure 6): a connect-use reads its
      target register during decode and forwards the {e data value}. *)

open Rc_isa

type variant = Fetch_before_dispatch | Fetch_after_dispatch

(** One slot of an issue group. *)
type slot =
  | Connect of Insn.connect list
  | Op of { srcs : int list; dst : int option }

(** How each [Op] slot resolved. *)
type resolved = {
  stale_phys : int list;  (** numbers obtained from the stale table *)
  phys : int list;  (** numbers actually accessed after forwarding *)
  values : int64 list;  (** values delivered to the operation *)
  dst_phys : int option;  (** physical destination after forwarding *)
  forwarded : bool;  (** some operand needed forwarding *)
  needs_stall : bool;
      (** fetch-before-dispatch only: the mapping changed via an
          automatic reset of a same-cycle write, so no connect has the
          value to forward; the interlock stalls the consumer *)
}

(** Execute one issue group.  [table] is updated in place, as the real
    table is at the execute stage; the register array holds the physical
    values at the start of the cycle.  Returns the resolution of each
    [Op] slot, in order. *)
val issue_group : variant -> Map_table.t -> int64 array -> slot list -> resolved list

(** Sequential reference semantics (one instruction per cycle). *)
val sequential : Map_table.t -> int64 array -> slot list -> resolved list
