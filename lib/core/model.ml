(** The four automatic register-connection models of paper section 2.3
    (Figure 3).  All models only ever adjust the mapping-table entry of
    the {e destination} register of a write.

    - model 1, {!No_reset}: maps change only via explicit connects.
    - model 2, {!Write_reset}: after a write through index [i], the write
      map of [i] is reset to its home location.
    - model 3, {!Write_reset_read_update}: additionally the read map of
      [i] is replaced by the previous write map, so the written value is
      readable through [i] with no extra connect-use.  This is the model
      the paper implements and simulates.
    - model 4, {!Read_write_reset}: both maps reset to home, emphasising
      free use of the core section. *)

type t =
  | No_reset
  | Write_reset
  | Write_reset_read_update
  | Read_write_reset

let all = [ No_reset; Write_reset; Write_reset_read_update; Read_write_reset ]

(** The model chosen for implementation and performance simulation in the
    paper. *)
let default = Write_reset_read_update

let to_string = function
  | No_reset -> "no-reset"
  | Write_reset -> "write-reset"
  | Write_reset_read_update -> "write-reset-read-update"
  | Read_write_reset -> "read-write-reset"

let of_string = function
  | "no-reset" | "1" -> Some No_reset
  | "write-reset" | "2" -> Some Write_reset
  | "write-reset-read-update" | "3" -> Some Write_reset_read_update
  | "read-write-reset" | "4" -> Some Read_write_reset
  | _ -> None

let number = function
  | No_reset -> 1
  | Write_reset -> 2
  | Write_reset_read_update -> 3
  | Read_write_reset -> 4

let pp ppf m = Fmt.string ppf (to_string m)
