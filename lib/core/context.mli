(** Process-context save and restore (paper section 4.2).

    Programs compiled for the extended architecture need core registers,
    extended registers {e and} the connection information preserved
    across a context switch; programs compiled for the original
    architecture only need the core registers.  The PSW
    [extended_arch] flag selects between the two formats. *)

(** A view of one machine's register state.  The arrays are the full
    physical files; the tables are live (restoring writes through
    them). *)
type machine_view = {
  iregs : int64 array;
  fregs : float array;
  imap : Map_table.t;
  fmap : Map_table.t;
  psw : Psw.t;
}

type format = Original | Extended

type t = {
  format : format;
  saved_psw : Psw.t;
  core_iregs : int64 array;
  core_fregs : float array;
  ext_iregs : int64 array;  (** empty in [Original] format *)
  ext_fregs : float array;
  iread : int array;  (** connection information; empty in [Original] *)
  iwrite : int array;
  fread : int array;
  fwrite : int array;
}

(** The format the context-switch routine picks for this process. *)
val format_of_psw : Psw.t -> format

(** Size of the saved context in 64-bit words — the payoff of the
    dual-format optimisation. *)
val words : t -> int

(** Capture the process context in the format selected by the PSW. *)
val save : machine_view -> t

(** Restore a saved context.  Restoring an [Original]-format context
    also resets the mapping tables, so a legacy program never observes a
    previous occupant's connections. *)
val restore : machine_view -> t -> unit
