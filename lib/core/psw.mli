(** Processor status word bits added by the RC extension (paper
    sections 4.2 and 4.3). *)

type t = {
  mutable map_enable : bool;
      (** when cleared, register accesses bypass the mapping table and go
          directly to the core registers *)
  mutable extended_arch : bool;
      (** the running program was compiled for the extended architecture;
          selects the context-switch format (section 4.2) *)
}

val create : ?map_enable:bool -> ?extended_arch:bool -> unit -> t
val copy : t -> t

(** Trap/interrupt entry: clears [map_enable] so time-critical handlers
    address core registers with no connect bookkeeping, and returns the
    PSW to restore (section 4.3). *)
val enter_trap : t -> t

(** Return from exception: restore the interrupted program's PSW, which
    automatically re-enables the register map. *)
val return_from_exception : t -> saved:t -> unit

val pp : Format.formatter -> t -> unit
