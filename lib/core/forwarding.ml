(** Zero-cycle connect forwarding (paper section 2.4, Figures 4–6).

    Connect instructions are implemented with zero-cycle execution
    latency: they may affect the register accesses of instructions issued
    in the {e same} cycle.  The mapping table itself is read late in
    decode and written at the start of execute, so same-cycle consumers
    see a stale table; forwarding repairs this.  What must be forwarded
    depends on where register fetch sits in the pipeline (Figure 4):

    - {e register fetch after dispatch} (Figure 5): connects forward the
      updated {e physical register numbers} to later instructions of the
      group during dispatch; fetch then uses correct numbers.
    - {e register fetch before dispatch} (Figure 6): fetch has already
      read the wrong register, so a connect-use reads the contents of its
      target physical register during decode and forwards the {e data
      value} to later instructions of the group.

    This module executes one issue group under either variant and under a
    plain sequential reference, exposing the stale values seen at decode
    and the corrected values after forwarding.  It is the executable
    form of the paper's Figures 5 and 6 and is exercised by the test
    suite; the timing simulator relies on the same property (map updates
    visible within the issue group) via {!Map_table}. *)

open Rc_isa

type variant = Fetch_before_dispatch | Fetch_after_dispatch

(** One slot of an issue group: either a (possibly multiple-) connect, or
    a generic operation reading and writing architectural indices. *)
type slot =
  | Connect of Insn.connect list
  | Op of { srcs : int list; dst : int option }

(** How each [Op] slot resolved. *)
type resolved = {
  stale_phys : int list;  (** numbers obtained from the stale table *)
  phys : int list;  (** numbers actually accessed after forwarding *)
  values : int64 list;  (** values delivered to the operation *)
  dst_phys : int option;  (** physical destination after forwarding *)
  forwarded : bool;  (** true if any operand needed forwarding *)
  needs_stall : bool;
      (** fetch-before-dispatch only: an operand's mapping was changed by
          an {e automatic reset} of an earlier same-cycle write, so its
          value cannot come from a connect's decode-stage read; the
          machine's interlock stalls it to the next cycle (it would also
          stall on data readiness). *)
}

(** Execute one issue group.  [table] is updated in place (as the real
    table is at the execute stage); [regfile] holds the physical register
    values at the start of the cycle.  Returns the resolution of each
    [Op] slot, in order. *)
let issue_group variant (table : Map_table.t) (regfile : int64 array)
    (group : slot list) =
  let stale = Map_table.copy table in
  (* Physical registers whose mapping was installed by an explicit
     connect this cycle (those have decode-stage value reads to forward
     from), as opposed to automatic resets. *)
  let connect_set = Hashtbl.create 8 in
  let resolutions = ref [] in
  List.iter
    (fun slot ->
      match slot with
      | Connect cs ->
          List.iter
            (fun (c : Insn.connect) ->
              Map_table.apply table c;
              if c.Insn.cmap = Insn.Read then
                Hashtbl.replace connect_set (c.Insn.ri, c.Insn.rp) ())
            cs
      | Op { srcs; dst } ->
          let stale_phys = List.map (Map_table.read stale) srcs in
          let phys = List.map (Map_table.read table) srcs in
          let needs_stall =
            variant = Fetch_before_dispatch
            && List.exists2
                 (fun i p ->
                   p <> Map_table.read stale i
                   && not (Hashtbl.mem connect_set (i, p)))
                 srcs phys
          in
          let values = List.map (fun p -> regfile.(p)) phys in
          let dst_phys =
            match dst with None -> None | Some i -> Some (Map_table.write table i)
          in
          (match dst with Some i -> Map_table.note_write table i | None -> ());
          let forwarded = stale_phys <> phys in
          resolutions :=
            { stale_phys; phys; values; dst_phys; forwarded; needs_stall }
            :: !resolutions)
    group;
  List.rev !resolutions

(** Sequential reference: each slot sees a fully up-to-date table, as if
    the group issued one instruction per cycle. *)
let sequential (table : Map_table.t) (regfile : int64 array) group =
  issue_group Fetch_after_dispatch table regfile group
