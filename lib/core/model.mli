(** The four automatic register-connection models of paper section 2.3
    (Figure 3).

    All models only ever adjust the mapping-table entry of the
    {e destination} register of a write:

    - model 1, {!No_reset}: maps change only via explicit connects;
    - model 2, {!Write_reset}: the write map resets to home after a
      write;
    - model 3, {!Write_reset_read_update}: additionally the read map
      receives the previous write map, so the written value is readable
      with no extra connect-use — the model the paper implements;
    - model 4, {!Read_write_reset}: both maps reset to home. *)

type t =
  | No_reset
  | Write_reset
  | Write_reset_read_update
  | Read_write_reset

(** All four models, in paper order. *)
val all : t list

(** The model chosen for implementation and performance simulation in
    the paper: {!Write_reset_read_update}. *)
val default : t

val to_string : t -> string

(** Accepts both names ("write-reset") and paper numbers ("2"). *)
val of_string : string -> t option

(** The paper's 1-based numbering. *)
val number : t -> int

val pp : Format.formatter -> t -> unit
