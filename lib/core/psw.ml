(** Processor status word bits added by the RC extension (paper
    sections 4.2 and 4.3).

    - [map_enable]: when cleared, register accesses bypass the mapping
      table and go directly to the core registers.  Cleared automatically
      on trap/interrupt entry; restored by the return-from-exception.
    - [extended_arch]: marks the running program as compiled for the
      extended architecture; the context-switch code uses it to choose
      between the two process-context formats. *)

type t = { mutable map_enable : bool; mutable extended_arch : bool }

let create ?(map_enable = true) ?(extended_arch = true) () =
  { map_enable; extended_arch }

let copy t = { t with map_enable = t.map_enable }

(** Trap/interrupt entry: the handler sees un-mapped core registers so
    time-critical device drivers pay no connect overhead. *)
let enter_trap t =
  let saved = copy t in
  t.map_enable <- false;
  saved

(** Return from exception: restore the interrupted program's PSW, which
    automatically re-enables the register map. *)
let return_from_exception t ~saved =
  t.map_enable <- saved.map_enable;
  t.extended_arch <- saved.extended_arch

let pp ppf t =
  Fmt.pf ppf "psw{map_enable=%b; extended_arch=%b}" t.map_enable
    t.extended_arch
