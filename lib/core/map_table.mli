(** The register mapping table (paper section 2.1).

    An [m]-entry table for one register class.  Each entry holds a
    {e read map} and a {e write map}: the physical register accessed when
    the architectural index appears as a source or as a destination.
    Separate read and write maps allow more efficient use of a limited
    number of entries, which matters most for small [m].

    One table instance serves one register class; a machine holds one
    per class. *)

open Rc_isa

type t = {
  model : Model.t;
  file : Reg.file;
  read_map : int array;  (** length [file.core] *)
  write_map : int array;
  mutable connects_applied : int;  (** statistics *)
  mutable auto_resets : int;
}

(** Number of architectural indices, [m]. *)
val entries : t -> int

(** A fresh table with every entry at its home location.
    [model] defaults to {!Model.default}. *)
val create : ?model:Model.t -> Reg.file -> t

val copy : t -> t

(** Physical register read when index [i] is a source.
    @raise Invalid_argument when [i] is out of range. *)
val read : t -> int -> int

(** Physical register written when index [i] is a destination. *)
val write : t -> int -> int

(** [connect_use t ~ri ~rp]: redirect all subsequent reads of index
    [ri] to physical register [rp] (paper section 2.2).
    @raise Invalid_argument when either operand is out of range. *)
val connect_use : t -> ri:int -> rp:int -> unit

(** [connect_def t ~ri ~rp]: redirect all subsequent writes of index
    [ri] to physical register [rp]. *)
val connect_def : t -> ri:int -> rp:int -> unit

(** Apply one update of a (possibly multiple-)connect instruction. *)
val apply : t -> Insn.connect -> unit

(** Automatic register connection performed as a side effect of a write
    through index [i] (paper Figure 3), according to the table's model.
    Must be called {e after} the write's physical destination has been
    taken from the old write map.  [auto_resets] counts only calls that
    actually changed a map entry; under {!Model.No_reset} the counters
    are never touched. *)
val note_write : t -> int -> unit

(** Reset every entry to its home location: performed by hardware at
    power-up and by [jsr]/[rts] (paper section 4.1). *)
val reset : t -> unit

(** True when every entry points home. *)
val is_home : t -> bool

(** Structural equality of model, file and both maps. *)
val equal : t -> t -> bool

(** First architectural index whose read map currently points at
    physical register [p], if any. *)
val index_reading : t -> int -> int option

val index_writing : t -> int -> int option
val pp : Format.formatter -> t -> unit
