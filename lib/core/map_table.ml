(** The register mapping table (paper section 2.1).

    An [m]-entry table for one register class.  Each entry holds a
    {e read map} and a {e write map}: the physical register used when the
    architectural index appears as a source or as a destination,
    respectively.  Separate read and write maps allow more efficient use
    of a limited number of entries, which matters most for small [m].

    One table instance serves one register class; a machine holds one per
    class. *)

open Rc_isa

type t = {
  model : Model.t;
  file : Reg.file;
  read_map : int array;  (** length [file.core] *)
  write_map : int array;
  mutable connects_applied : int;  (** statistics *)
  mutable auto_resets : int;
}

let entries t = t.file.Reg.core

let create ?(model = Model.default) (file : Reg.file) =
  {
    model;
    file;
    read_map = Array.init file.Reg.core Reg.home;
    write_map = Array.init file.Reg.core Reg.home;
    connects_applied = 0;
    auto_resets = 0;
  }

let copy t =
  {
    t with
    read_map = Array.copy t.read_map;
    write_map = Array.copy t.write_map;
  }

let check_index t i =
  if i < 0 || i >= entries t then invalid_arg "Map_table: index out of range"

let check_phys t p =
  if p < 0 || p >= t.file.Reg.total then
    invalid_arg "Map_table: physical register out of range"

(** Physical register read when architectural index [i] is a source. *)
let read t i =
  check_index t i;
  t.read_map.(i)

(** Physical register written when architectural index [i] is a
    destination. *)
let write t i =
  check_index t i;
  t.write_map.(i)

(** [connect_use t ~ri ~rp]: redirect all subsequent reads of index [ri]
    to physical register [rp]. *)
let connect_use t ~ri ~rp =
  check_index t ri;
  check_phys t rp;
  t.read_map.(ri) <- rp;
  t.connects_applied <- t.connects_applied + 1

(** [connect_def t ~ri ~rp]: redirect all subsequent writes of index
    [ri] to physical register [rp]. *)
let connect_def t ~ri ~rp =
  check_index t ri;
  check_phys t rp;
  t.write_map.(ri) <- rp;
  t.connects_applied <- t.connects_applied + 1

(** Apply one update of a (possibly multiple-) connect instruction. *)
let apply t (c : Insn.connect) =
  match c.Insn.cmap with
  | Insn.Read -> connect_use t ~ri:c.Insn.ri ~rp:c.Insn.rp
  | Insn.Write -> connect_def t ~ri:c.Insn.ri ~rp:c.Insn.rp

(** Automatic register connection performed as a side effect of a
    register write through index [i] (paper Figure 3).  Must be called
    {e after} the write's physical destination has been taken from the
    old write map.  [auto_resets] counts only writes that actually
    changed a map entry: a reset of an entry already at home (the
    steady state of core-section traffic) is not an automatic
    connection. *)
let note_write t i =
  check_index t i;
  match t.model with
  | Model.No_reset -> ()
  | Model.Write_reset ->
      if t.write_map.(i) <> Reg.home i then begin
        t.write_map.(i) <- Reg.home i;
        t.auto_resets <- t.auto_resets + 1
      end
  | Model.Write_reset_read_update ->
      if t.read_map.(i) <> t.write_map.(i) || t.write_map.(i) <> Reg.home i
      then begin
        t.read_map.(i) <- t.write_map.(i);
        t.write_map.(i) <- Reg.home i;
        t.auto_resets <- t.auto_resets + 1
      end
  | Model.Read_write_reset ->
      if t.read_map.(i) <> Reg.home i || t.write_map.(i) <> Reg.home i
      then begin
        t.read_map.(i) <- Reg.home i;
        t.write_map.(i) <- Reg.home i;
        t.auto_resets <- t.auto_resets + 1
      end

(** Reset every entry to its home location: performed by hardware at
    power-up and by [jsr]/[rts] (paper section 4.1). *)
let reset t =
  for i = 0 to entries t - 1 do
    t.read_map.(i) <- Reg.home i;
    t.write_map.(i) <- Reg.home i
  done

let is_home t =
  let ok = ref true in
  for i = 0 to entries t - 1 do
    if t.read_map.(i) <> Reg.home i || t.write_map.(i) <> Reg.home i then
      ok := false
  done;
  !ok

let equal a b =
  a.model = b.model && a.file = b.file
  && a.read_map = b.read_map
  && a.write_map = b.write_map

(** First architectural index whose read map currently points at physical
    register [p], if any. *)
let index_reading t p =
  let rec go i =
    if i >= entries t then None
    else if t.read_map.(i) = p then Some i
    else go (i + 1)
  in
  go 0

let index_writing t p =
  let rec go i =
    if i >= entries t then None
    else if t.write_map.(i) = p then Some i
    else go (i + 1)
  in
  go 0

let pp ppf t =
  for i = 0 to entries t - 1 do
    Fmt.pf ppf "%2d: read->%d write->%d@." i t.read_map.(i) t.write_map.(i)
  done
